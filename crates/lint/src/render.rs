//! Finding types plus deterministic text and JSON rendering.
//!
//! The JSON writer follows the same contract as `tacc-bench`'s golden
//! serializer: insertion-ordered keys, byte-stable output for identical
//! findings, trailing newline — so a CI artifact diff is always a real
//! behavior change, never formatting noise.

use std::fmt::Write as _;

/// One lint finding at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Stable lint family name (`hash-iter`, `wall-clock`, …).
    pub lint: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// A finding silenced by a well-formed `tacc-lint: allow(...)` comment.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Suppressed {
    /// The silenced finding.
    pub finding: Finding,
    /// The justification from the allow comment.
    pub reason: String,
}

/// Workspace symbol-graph statistics (v2).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SymbolStats {
    /// Function definitions extracted across the workspace.
    pub fns: usize,
    /// Resolved call edges in the merged graph.
    pub call_edges: usize,
    /// Functions reachable from the configured roots (equals `fns` when
    /// reachability filtering is off).
    pub reachable_fns: usize,
    /// Panic sites dropped from budgeting as unreachable.
    pub panic_sites_skipped: usize,
}

/// The full scan outcome.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// Hard findings, sorted by (file, line, lint, message).
    pub findings: Vec<Finding>,
    /// Suppressed findings with their reasons, same order.
    pub suppressed: Vec<Suppressed>,
    /// Baseline entries whose budget exceeds the current count:
    /// `(file, found, budget)` — an invitation to re-bless tighter.
    pub baseline_shrunk: Vec<(String, u64, u64)>,
    /// Fresh baseline content when blessing was requested.
    pub blessed_baseline: Option<String>,
    /// Symbol-graph statistics.
    pub symbols: SymbolStats,
    /// Byte-stable workspace-graph dump, when requested via
    /// [`crate::Options::dump_graph`].
    pub graph_dump: Option<String>,
}

impl Report {
    /// True when the workspace passes (no hard findings).
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.lint, f.message);
        }
        for (file, found, budget) in &self.baseline_shrunk {
            let _ = writeln!(
                out,
                "note: {file}: panic-surface count {found} is below the baseline budget \
                 {budget} — run with --bless-baseline to ratchet down"
            );
        }
        let _ = writeln!(
            out,
            "tacc-lint: {} file(s) scanned, {} finding(s), {} suppression(s)",
            self.files_scanned,
            self.findings.len(),
            self.suppressed.len()
        );
        let _ = writeln!(
            out,
            "tacc-lint: graph: {} fn(s), {} call edge(s), {} reachable, {} panic site(s) \
             outside the reachable set",
            self.symbols.fns,
            self.symbols.call_edges,
            self.symbols.reachable_fns,
            self.symbols.panic_sites_skipped
        );
        out
    }

    /// Renders the byte-stable JSON report.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"version\": 2,");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(
            out,
            "  \"symbols\": {{\"fns\": {}, \"call_edges\": {}, \"reachable_fns\": {}, \
             \"panic_sites_skipped\": {}}},",
            self.symbols.fns,
            self.symbols.call_edges,
            self.symbols.reachable_fns,
            self.symbols.panic_sites_skipped
        );

        out.push_str("  \"findings\": [");
        write_findings(&mut out, self.findings.iter().map(|f| (f, None)));
        out.push_str("],\n");

        out.push_str("  \"suppressed\": [");
        write_findings(
            &mut out,
            self.suppressed
                .iter()
                .map(|s| (&s.finding, Some(s.reason.as_str()))),
        );
        out.push_str("],\n");

        out.push_str("  \"summary\": {");
        let mut first = true;
        for lint in crate::lints::ALL_LINTS {
            let n = self
                .findings
                .iter()
                .filter(|f| f.lint == lint.name())
                .count();
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {n}", lint.name());
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders a minimal, byte-stable SARIF 2.1.0 document (hand-rolled,
    /// same no-new-deps contract as the JSON writer). Hard findings are
    /// `error` results; suppressed findings appear with an `inSource`
    /// suppression carrying the allow reason, so code-scanning UIs show
    /// both the rule hit and its justification.
    pub fn to_sarif(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
        out.push_str("  \"version\": \"2.1.0\",\n");
        out.push_str("  \"runs\": [\n    {\n");
        out.push_str("      \"tool\": {\n        \"driver\": {\n");
        out.push_str("          \"name\": \"tacc-lint\",\n");
        out.push_str("          \"informationUri\": \"DESIGN.md\",\n");
        out.push_str("          \"rules\": [");
        let mut first = true;
        for lint in crate::lints::ALL_LINTS {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n            {{\"id\": {}}}", json_str(lint.name()));
        }
        out.push_str("\n          ]\n        }\n      },\n");
        out.push_str("      \"results\": [");
        let mut first = true;
        let results = self.findings.iter().map(|f| (f, None)).chain(
            self.suppressed
                .iter()
                .map(|s| (&s.finding, Some(&s.reason))),
        );
        for (f, reason) in results {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n        {\n");
            let _ = writeln!(out, "          \"ruleId\": {},", json_str(f.lint));
            let _ = writeln!(out, "          \"level\": \"error\",");
            let _ = writeln!(
                out,
                "          \"message\": {{\"text\": {}}},",
                json_str(&f.message)
            );
            if let Some(reason) = reason {
                let _ = writeln!(
                    out,
                    "          \"suppressions\": [{{\"kind\": \"inSource\", \
                     \"justification\": {}}}],",
                    json_str(reason)
                );
            }
            let _ = write!(
                out,
                "          \"locations\": [{{\"physicalLocation\": {{\
                 \"artifactLocation\": {{\"uri\": {}}}, \
                 \"region\": {{\"startLine\": {}}}}}}}]\n        }}",
                json_str(&f.file),
                f.line
            );
        }
        if !first {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }\n  ]\n}\n");
        out
    }
}

/// Splices `value` (a rendered JSON value) in as the `key` member of the
/// top-level object in `doc`, replacing an existing member or appending
/// a new one. String- and depth-aware but otherwise format-preserving,
/// so the perf harness's committed `BENCH_hotpath.json` keeps its
/// scenario bytes untouched when the lint section is refreshed.
pub fn splice_top_level(doc: &str, key: &str, value: &str) -> String {
    let bytes = doc.as_bytes();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escape = false;
    let mut i = 0usize;
    let needle = format!("\"{key}\"");

    while i < bytes.len() {
        let c = bytes[i] as char;
        if in_str {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
            i += 1;
            continue;
        }
        match c {
            '"' => {
                if depth == 1 && doc[i..].starts_with(&needle) {
                    // Member found: replace its value span.
                    let mut j = i + needle.len();
                    while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j] == b':' {
                        j += 1;
                        while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                            j += 1;
                        }
                        let end = value_end(doc, j);
                        return format!("{}{}{}", &doc[..j], value, &doc[end..]);
                    }
                }
                in_str = true;
            }
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            _ => {}
        }
        i += 1;
    }

    // No existing member: insert before the final `}`.
    let Some(close) = doc.rfind('}') else {
        return format!("{{\n  \"{key}\": {value}\n}}\n");
    };
    let body = doc[..close].trim_end();
    let empty = body.trim_start().len() <= 1; // just `{`
    let sep = if empty { "" } else { "," };
    format!("{body}{sep}\n  \"{key}\": {value}\n{}", &doc[close..])
}

/// Index one past the end of the JSON value starting at `start`.
fn value_end(doc: &str, start: usize) -> usize {
    let bytes = doc.as_bytes();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escape = false;
    let mut i = start;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if in_str {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
        } else {
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    if depth == 0 {
                        return i; // scalar value ran into the container close
                    }
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                ',' if depth == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn write_findings<'a>(
    out: &mut String,
    items: impl Iterator<Item = (&'a Finding, Option<&'a str>)>,
) {
    let mut any = false;
    let mut it = items.peekable();
    while let Some((f, reason)) = it.next() {
        any = true;
        out.push_str("\n    {");
        let _ = write!(
            out,
            "\"lint\": {}, \"file\": {}, \"line\": {}, \"message\": {}",
            json_str(f.lint),
            json_str(&f.file),
            f.line,
            json_str(&f.message)
        );
        if let Some(reason) = reason {
            let _ = write!(out, ", \"reason\": {}", json_str(reason));
        }
        out.push('}');
        if it.peek().is_some() {
            out.push(',');
        }
    }
    if any {
        out.push_str("\n  ");
    }
}

/// Escapes a string as a JSON literal (same escape set as the bench
/// golden serializer).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            files_scanned: 2,
            findings: vec![Finding {
                file: "crates/core/src/lib.rs".into(),
                line: 7,
                lint: "hash-iter",
                message: "HashMap in simulation-path crate".into(),
            }],
            suppressed: vec![Suppressed {
                finding: Finding {
                    file: "crates/sched/src/scheduler.rs".into(),
                    line: 200,
                    lint: "wall-clock",
                    message: "Instant::now()".into(),
                },
                reason: "measurement-only".into(),
            }],
            baseline_shrunk: Vec::new(),
            blessed_baseline: None,
            symbols: SymbolStats {
                fns: 10,
                call_edges: 4,
                reachable_fns: 6,
                panic_sites_skipped: 3,
            },
            graph_dump: None,
        }
    }

    #[test]
    fn json_is_byte_stable_and_shaped() {
        let r = sample();
        let a = r.to_json();
        assert_eq!(a, r.to_json());
        assert!(a.ends_with("}\n"));
        assert!(a.contains("\"lint\": \"hash-iter\""));
        assert!(a.contains("\"line\": 7"));
        assert!(a.contains("\"reason\": \"measurement-only\""));
        assert!(a.contains("\"hash-iter\": 1"));
        assert!(a.contains("\"wall-clock\": 0"));
    }

    #[test]
    fn text_report_lists_findings_and_counts() {
        let text = sample().to_text();
        assert!(text.contains("crates/core/src/lib.rs:7: [hash-iter]"));
        assert!(text.contains("2 file(s) scanned, 1 finding(s), 1 suppression(s)"));
    }

    #[test]
    fn string_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_carries_the_symbol_stats() {
        let a = sample().to_json();
        assert!(a.contains(
            "\"symbols\": {\"fns\": 10, \"call_edges\": 4, \"reachable_fns\": 6, \
             \"panic_sites_skipped\": 3},"
        ));
    }

    #[test]
    fn sarif_is_byte_stable_and_shaped() {
        let r = sample();
        let a = r.to_sarif();
        assert_eq!(a, r.to_sarif());
        assert!(a.contains("\"version\": \"2.1.0\""));
        assert!(a.contains("{\"id\": \"hash-iter\"}"));
        assert!(a.contains("\"ruleId\": \"hash-iter\""));
        assert!(a.contains("\"startLine\": 7"));
        assert!(a.contains("\"uri\": \"crates/core/src/lib.rs\""));
        // The suppressed finding carries its justification.
        assert!(a.contains("\"justification\": \"measurement-only\""));
    }

    #[test]
    fn sarif_with_no_results_is_an_empty_array() {
        let r = Report::default();
        assert!(r.to_sarif().contains("\"results\": []"));
    }

    #[test]
    fn splice_appends_a_missing_section() {
        let doc = "{\n  \"scenarios\": [\n    {\"name\": \"a\"}\n  ]\n}\n";
        let out = splice_top_level(doc, "lint", "{\"files_scanned\": 3}");
        assert!(out.contains("\"scenarios\""));
        assert!(out.contains(",\n  \"lint\": {\"files_scanned\": 3}\n}"));
    }

    #[test]
    fn splice_replaces_an_existing_section_preserving_the_rest() {
        let doc = "{\n  \"lint\": {\"files_scanned\": 1},\n  \"scenarios\": [{\"k\": \"}\"}]\n}\n";
        let out = splice_top_level(doc, "lint", "{\"files_scanned\": 9}");
        assert!(out.contains("\"lint\": {\"files_scanned\": 9}"));
        assert!(!out.contains("\"files_scanned\": 1"));
        // The brace inside the string literal did not confuse the walk.
        assert!(out.contains("[{\"k\": \"}\"}]"));
    }

    #[test]
    fn splice_into_an_empty_document() {
        let out = splice_top_level("{}\n", "lint", "{\"files_scanned\": 0}");
        assert!(out.contains("\"lint\": {\"files_scanned\": 0}"));
        let out2 = splice_top_level("", "lint", "1");
        assert!(out2.contains("\"lint\": 1"));
    }
}
