//! The merged workspace symbol graph.
//!
//! Per-file [`crate::symbols::FileSymbols`] (extracted in parallel, one
//! job per file) merge here into a single deterministic structure: every
//! function definition in the workspace plus resolved call edges. The
//! merge is pure and order-preserving — files arrive in the engine's
//! sorted walk order and functions in source order — so two scans of the
//! same tree produce byte-identical [`WorkspaceGraph::to_text`] dumps,
//! which the determinism test asserts.
//!
//! Call resolution is a heuristic, not rustc name resolution: a call
//! from crate C first binds to same-crate candidates, otherwise to
//! candidates in crates C may depend on per the layer DAG. A path
//! qualifier (`Scheduler::new`) narrows candidates to matching impl
//! types, modules, or crates first. Unresolved calls (std, trait
//! dispatch we cannot see) simply produce no edge; the reachability
//! family treats missing edges conservatively at the budgeting step.

use std::collections::BTreeMap;

use crate::symbols::FileSymbols;

/// One file's extraction result queued for the merge.
pub struct FileEntry {
    /// Short crate name (`core`, `sched`, …).
    pub crate_name: String,
    /// Workspace-relative path.
    pub rel_path: String,
    /// Whether the file is a binary target (`src/bin/**`).
    pub bin: bool,
    /// The extracted symbols.
    pub symbols: FileSymbols,
}

/// One function in the merged graph.
#[derive(Debug, Clone)]
pub struct GraphFn {
    /// Short crate name.
    pub crate_name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// `::`-joined module path inside the crate (empty for `lib.rs`).
    pub module: String,
    /// Enclosing impl type, when any.
    pub impl_type: Option<String>,
    /// Function identifier.
    pub name: String,
    /// 1-based span of the definition.
    pub start_line: u32,
    /// Inclusive end line of the body.
    pub end_line: u32,
    /// Defined inside a `#[cfg(test)]` / `#[test]` region.
    pub is_test: bool,
    /// Defined in a binary target.
    pub is_bin: bool,
}

impl GraphFn {
    /// Canonical display path: `crate::module::Type::name` with empty
    /// segments omitted.
    pub fn path(&self) -> String {
        let mut s = self.crate_name.clone();
        if !self.module.is_empty() {
            s.push_str("::");
            s.push_str(&self.module);
        }
        if let Some(t) = &self.impl_type {
            s.push_str("::");
            s.push_str(t);
        }
        s.push_str("::");
        s.push_str(&self.name);
        s
    }
}

/// The merged, deterministic workspace graph.
#[derive(Default)]
pub struct WorkspaceGraph {
    /// Every function definition, in walk × source order.
    pub fns: Vec<GraphFn>,
    /// Resolved call edges `(caller index, callee index)`, sorted and
    /// deduplicated.
    pub edges: Vec<(u32, u32)>,
    /// Source-level `tacc_*` references `(from crate, to crate)`, sorted
    /// and deduplicated.
    pub use_edges: Vec<(String, String)>,
}

/// Derives the module path from a workspace-relative file path:
/// `crates/core/src/lifecycle.rs` → `lifecycle`,
/// `crates/sched/src/policy/fifo.rs` → `policy::fifo`, `lib.rs` → ``.
fn module_of(rel_path: &str) -> String {
    let after_src = rel_path.split_once("/src/").map_or(rel_path, |(_, m)| m);
    let stem = after_src.trim_end_matches(".rs");
    let mut segs: Vec<&str> = stem.split('/').collect();
    match segs.last() {
        Some(&"lib") | Some(&"main") | Some(&"mod") => {
            segs.pop();
        }
        _ => {}
    }
    segs.join("::")
}

/// Merges per-file symbols into the workspace graph.
///
/// `dep_allowed(from, to)` is the layer-DAG oracle used to scope
/// cross-crate call resolution.
pub fn build(entries: &[FileEntry], dep_allowed: &dyn Fn(&str, &str) -> bool) -> WorkspaceGraph {
    let mut graph = WorkspaceGraph::default();
    // (entry index, fn index within file) → graph index, plus the
    // candidate index for callee lookup: non-test, non-bin fns only.
    let mut by_name: BTreeMap<&str, Vec<u32>> = BTreeMap::new();

    for entry in entries {
        let module = module_of(&entry.rel_path);
        for sym in &entry.symbols.fns {
            let idx = graph.fns.len() as u32;
            graph.fns.push(GraphFn {
                crate_name: entry.crate_name.clone(),
                file: entry.rel_path.clone(),
                module: module.clone(),
                impl_type: sym.impl_type.clone(),
                name: sym.name.clone(),
                start_line: sym.start_line,
                end_line: sym.end_line,
                is_test: sym.is_test,
                is_bin: entry.bin,
            });
            if !sym.is_test && !entry.bin {
                by_name.entry(&sym.name).or_default().push(idx);
            }
        }
        for (target, _) in &entry.symbols.uses {
            if target != &entry.crate_name {
                graph
                    .use_edges
                    .push((entry.crate_name.clone(), target.clone()));
            }
        }
    }

    // Second pass: resolve calls now that every definition is indexed.
    let mut caller = 0u32;
    for entry in entries {
        for sym in &entry.symbols.fns {
            if !sym.is_test {
                for call in &sym.calls {
                    let Some(cands) = by_name.get(call.name.as_str()) else {
                        continue; // std / trait dispatch: no edge
                    };
                    let cands = narrow_by_qualifier(&graph, cands, call.qualifier.as_deref());
                    let same: Vec<u32> = cands
                        .iter()
                        .copied()
                        .filter(|&i| graph.fns[i as usize].crate_name == entry.crate_name)
                        .collect();
                    let resolved: Vec<u32> = if same.is_empty() {
                        cands
                            .iter()
                            .copied()
                            .filter(|&i| {
                                dep_allowed(&entry.crate_name, &graph.fns[i as usize].crate_name)
                            })
                            .collect()
                    } else {
                        same
                    };
                    for callee in resolved {
                        graph.edges.push((caller, callee));
                    }
                }
            }
            caller += 1;
        }
    }
    graph.edges.sort_unstable();
    graph.edges.dedup();
    graph.use_edges.sort();
    graph.use_edges.dedup();
    graph
}

/// Applies a `Qualifier::name` narrowing: keep candidates whose impl
/// type, trailing module segment, or crate equals the qualifier. An
/// empty narrowing falls back to the full candidate set (conservative
/// over-approximation beats dropping a real edge).
fn narrow_by_qualifier(graph: &WorkspaceGraph, cands: &[u32], qual: Option<&str>) -> Vec<u32> {
    let Some(q) = qual else {
        return cands.to_vec();
    };
    let q_short = q.strip_prefix("tacc_").unwrap_or(q);
    let narrowed: Vec<u32> = cands
        .iter()
        .copied()
        .filter(|&i| {
            let f = &graph.fns[i as usize];
            f.impl_type.as_deref() == Some(q)
                || f.module.rsplit("::").next() == Some(q)
                || f.crate_name == q_short
        })
        .collect();
    if narrowed.is_empty() {
        cands.to_vec()
    } else {
        narrowed
    }
}

impl WorkspaceGraph {
    /// Byte-stable text dump: the determinism gate compares two
    /// independent scans of the workspace with `assert_eq!` on this.
    pub fn to_text(&self) -> String {
        let mut out = String::from("workspace-graph v1\n");
        for (i, f) in self.fns.iter().enumerate() {
            let mut flags = String::new();
            if f.is_test {
                flags.push_str(" test");
            }
            if f.is_bin {
                flags.push_str(" bin");
            }
            out.push_str(&format!(
                "fn {i} {} {}:{}..{}{}\n",
                f.path(),
                f.file,
                f.start_line,
                f.end_line,
                flags
            ));
        }
        for (a, b) in &self.edges {
            out.push_str(&format!(
                "edge {} -> {}\n",
                self.fns[*a as usize].path(),
                self.fns[*b as usize].path()
            ));
        }
        for (a, b) in &self.use_edges {
            out.push_str(&format!("use {a} -> {b}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::symbols::extract;

    fn entry(crate_name: &str, rel_path: &str, bin: bool, src: &str) -> FileEntry {
        let lexed = lex(src);
        let ranges = crate::lints::test_ranges(&lexed.tokens);
        FileEntry {
            crate_name: crate_name.to_owned(),
            rel_path: rel_path.to_owned(),
            bin,
            symbols: extract(&lexed.tokens, &ranges),
        }
    }

    fn allow_all(_: &str, _: &str) -> bool {
        true
    }

    #[test]
    fn module_paths() {
        assert_eq!(module_of("crates/core/src/lifecycle.rs"), "lifecycle");
        assert_eq!(module_of("crates/sched/src/policy/fifo.rs"), "policy::fifo");
        assert_eq!(module_of("crates/core/src/lib.rs"), "");
        assert_eq!(module_of("crates/sched/src/policy/mod.rs"), "policy");
    }

    #[test]
    fn same_crate_resolution_wins_over_cross_crate() {
        let entries = vec![
            entry(
                "core",
                "crates/core/src/lib.rs",
                false,
                "fn run() { helper(); }\nfn helper() {}\n",
            ),
            entry(
                "sched",
                "crates/sched/src/lib.rs",
                false,
                "fn helper() {}\n",
            ),
        ];
        let g = build(&entries, &allow_all);
        // run (0) → core::helper (1), not sched::helper (2).
        assert_eq!(g.edges, vec![(0, 1)]);
    }

    #[test]
    fn qualifier_narrows_to_the_right_impl_type() {
        let entries = vec![
            entry(
                "core",
                "crates/core/src/lib.rs",
                false,
                "fn boot() { let s = Scheduler::new(); }\nstruct Local;\nimpl Local { fn new() -> Self { Local } }\n",
            ),
            entry(
                "sched",
                "crates/sched/src/lib.rs",
                false,
                "pub struct Scheduler;\nimpl Scheduler { pub fn new() -> Self { Scheduler } }\n",
            ),
        ];
        let g = build(&entries, &allow_all);
        let boot = 0u32;
        let sched_new = g
            .fns
            .iter()
            .position(|f| f.crate_name == "sched" && f.name == "new")
            .expect("sched new") as u32;
        assert!(g.edges.contains(&(boot, sched_new)));
        // The qualifier keeps Local::new out even though it's same-crate.
        let local_new = g
            .fns
            .iter()
            .position(|f| f.crate_name == "core" && f.name == "new")
            .expect("local new") as u32;
        assert!(!g.edges.contains(&(boot, local_new)));
    }

    #[test]
    fn test_fns_neither_emit_nor_receive_edges() {
        let entries = vec![entry(
            "core",
            "crates/core/src/lib.rs",
            false,
            "fn lib() { target(); }\nfn target() {}\n\
             #[cfg(test)]\nmod tests {\n    fn target() {}\n    fn t() { target(); }\n}\n",
        )];
        let g = build(&entries, &allow_all);
        assert_eq!(g.edges, vec![(0, 1)]);
    }

    #[test]
    fn dump_is_stable_across_rebuilds() {
        let mk = || {
            build(
                &[
                    entry(
                        "core",
                        "crates/core/src/lib.rs",
                        false,
                        "use tacc_sched::Scheduler;\nfn a() { b(); }\nfn b() {}\n",
                    ),
                    entry(
                        "core",
                        "crates/core/src/bin/x.rs",
                        true,
                        "fn main() { a(); }\n",
                    ),
                ],
                &allow_all,
            )
        };
        let d1 = mk().to_text();
        let d2 = mk().to_text();
        assert_eq!(d1, d2);
        assert!(d1.contains("use core -> sched"));
        assert!(d1.contains("bin"));
    }
}
