//! Cargo manifest parsing (line-based, no TOML dependency) and the
//! documented layer DAG from DESIGN.md.
//!
//! The DAG, bottom-up:
//!
//! ```text
//! {par, metrics} → sim → cluster → {storage, workload} → obs
//!   → {compiler, exec, sched} → core → {tcloud, taccd} → {bench, lint}
//!   → tests
//! ```
//!
//! A crate may depend only on crates at strictly lower layers; same-layer
//! edges (e.g. `compiler` → `sched`) are violations. `lint` is special:
//! although it sits at tooling level, it is kept dependency-light by
//! construction and may reach only `par`.

/// One parsed crate manifest: the package's short name and its `tacc-*`
/// `[dependencies]` edges with their line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Short crate name (`core` for `tacc-core`).
    pub package: String,
    /// `(short dep name, 1-based manifest line)` for each `tacc-*`
    /// dependency. Dev-dependencies are exempt: test-only edges (e.g.
    /// `core`'s tests driving `tcloud`) do not ship in the library graph.
    pub deps: Vec<(String, u32)>,
}

/// Parses the `[package] name` and `[dependencies] tacc-*` entries out of
/// a manifest. Line-based on purpose: workspace manifests are simple, and
/// a TOML parser would break the no-new-deps constraint.
pub fn parse(text: &str) -> Manifest {
    let mut package = String::new();
    let mut deps = Vec::new();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix('[') {
            section = rest.trim_end_matches(']').to_owned();
            continue;
        }
        if section == "package" && package.is_empty() {
            if let Some(value) = line.strip_prefix("name") {
                let value = value.trim_start().trim_start_matches('=').trim();
                package = value.trim_matches('"').to_owned();
            }
        }
        if section == "dependencies" {
            if let Some(rest) = line.strip_prefix("tacc-") {
                let short: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_lowercase() || *c == '-')
                    .collect();
                if !short.is_empty() {
                    deps.push((short, idx as u32 + 1));
                }
            }
        }
    }
    Manifest {
        package: package.strip_prefix("tacc-").unwrap_or(&package).to_owned(),
        deps,
    }
}

/// The crate's layer in the documented DAG (lower builds first). `None`
/// for names outside the workspace.
pub fn rank(short: &str) -> Option<u32> {
    Some(match short {
        "par" | "metrics" => 0,
        "sim" => 1,
        "cluster" => 2,
        "storage" | "workload" => 3,
        "obs" => 4,
        "compiler" | "exec" | "sched" => 5,
        "core" => 6,
        // The service edge: the daemon and the client CLI sit side by
        // side above the deterministic core. Neither may depend on the
        // other — their shared wire protocol lives in `core::wire`.
        "tcloud" | "taccd" => 7,
        "bench" | "lint" => 8,
        "tests" => 9,
        _ => return None,
    })
}

/// Whether `from` may depend on `to` under the layer DAG.
pub fn edge_allowed(from: &str, to: &str) -> bool {
    if from == to {
        return true; // self-references (e.g. a bin naming its own crate)
    }
    if from == "lint" {
        // The lint pass must stay dependency-light: it scans the
        // simulator, it must never link it.
        return to == "par";
    }
    match (rank(from), rank(to)) {
        (Some(f), Some(t)) => t < f,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_name_and_tacc_deps_with_lines() {
        let toml = "[package]\nname = \"tacc-sched\"\n\n[dependencies]\n\
                    serde.workspace = true\ntacc-cluster.workspace = true\n\
                    tacc-workload = { workspace = true }\n\n[dev-dependencies]\n\
                    tacc-core.workspace = true\n";
        let m = parse(toml);
        assert_eq!(m.package, "sched");
        assert_eq!(
            m.deps,
            vec![("cluster".to_owned(), 6), ("workload".to_owned(), 7)]
        );
    }

    #[test]
    fn dag_accepts_documented_edges_and_rejects_inversions() {
        assert!(edge_allowed("core", "sched"));
        assert!(edge_allowed("sched", "obs"));
        assert!(edge_allowed("bench", "core"));
        assert!(edge_allowed("tcloud", "core"));
        assert!(edge_allowed("taccd", "core"));
        assert!(edge_allowed("bench", "taccd"));
        // Upward and same-layer edges are violations.
        assert!(!edge_allowed("core", "tcloud"));
        assert!(!edge_allowed("core", "taccd"));
        assert!(!edge_allowed("taccd", "tcloud"));
        assert!(!edge_allowed("tcloud", "taccd"));
        assert!(!edge_allowed("sched", "core"));
        assert!(!edge_allowed("compiler", "sched"));
        assert!(!edge_allowed("storage", "workload"));
        assert!(!edge_allowed("sim", "cluster"));
    }

    #[test]
    fn lint_may_only_reach_par() {
        assert!(edge_allowed("lint", "par"));
        assert!(!edge_allowed("lint", "metrics"));
        assert!(!edge_allowed("lint", "core"));
        assert!(!edge_allowed("lint", "bench"));
    }
}
