//! A minimal comment/string/ident-aware lexer for Rust source.
//!
//! The lint pass needs to tell an identifier in code apart from the same
//! word inside a string literal, a doc comment, or a `#[cfg(test)]` block
//! — nothing more. So this is not a full Rust lexer: numbers, lifetimes
//! and char literals are recognised only far enough to not corrupt the
//! token stream (e.g. `'a'` vs `'a`, `r#"…"#` raw strings, nested block
//! comments), and every remaining byte becomes a single-character punct
//! token. Line numbers are tracked for diagnostics and suppression
//! matching.

/// What a token is; identifiers and string literals carry their text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident(String),
    /// A string literal (content without quotes; raw and byte strings
    /// included).
    Str(String),
    /// A character literal (content discarded).
    Char,
    /// A lifetime such as `'a` (name discarded).
    Lifetime,
    /// A numeric literal (value discarded).
    Num,
    /// Any other single character (`{`, `!`, `:`, …).
    Punct(char),
}

/// One token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token payload.
    pub kind: TokKind,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// One comment (line or block, doc or plain) with its starting line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based source line the comment starts on.
    pub line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order (kept separate: suppression directives
    /// live here, and lint patterns must never match inside them).
    pub comments: Vec<Comment>,
}

/// Lexes `src` into code tokens and comments.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.pos < self.bytes.len() {
            let c = self.bytes[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string_literal(),
                b'\'' => self.char_or_lifetime(),
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident_or_raw_string(),
                c if c.is_ascii_digit() => self.number(),
                c => {
                    self.push(TokKind::Punct(c as char));
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind) {
        self.out.tokens.push(Token {
            kind,
            line: self.line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.out.comments.push(Comment {
            text: self.src[start..self.pos].to_owned(),
            line: self.line,
        });
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            match self.bytes[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                _ => self.pos += 1,
            }
        }
        self.out.comments.push(Comment {
            text: self.src[start..self.pos].to_owned(),
            line: start_line,
        });
    }

    /// A `"…"` literal with escapes (also reached after a `b` ident for
    /// byte strings, whose escape rules are identical for our purposes).
    fn string_literal(&mut self) {
        let start_line = self.line;
        self.pos += 1;
        let content_start = self.pos;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2, // skip the escaped byte
                b'"' => break,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let content_end = self.pos.min(self.bytes.len());
        self.pos = content_end + 1;
        self.out.tokens.push(Token {
            kind: TokKind::Str(
                self.src
                    .get(content_start..content_end)
                    .unwrap_or_default()
                    .to_owned(),
            ),
            line: start_line,
        });
    }

    /// `'a'` (char) vs `'a` (lifetime) vs `'\n'` (escaped char).
    fn char_or_lifetime(&mut self) {
        match self.peek(1) {
            Some(b'\\') => {
                // Escaped char literal: scan to the closing quote.
                self.pos += 2;
                while self.pos < self.bytes.len() {
                    match self.bytes[self.pos] {
                        b'\\' => self.pos += 2,
                        b'\'' => {
                            self.pos += 1;
                            break;
                        }
                        _ => self.pos += 1,
                    }
                }
                self.push(TokKind::Char);
            }
            Some(c) if c == b'_' || c.is_ascii_alphabetic() => {
                // Ident-ish: `'a'` is a char, `'a` a lifetime.
                let mut end = self.pos + 1;
                while end < self.bytes.len()
                    && (self.bytes[end] == b'_' || self.bytes[end].is_ascii_alphanumeric())
                {
                    end += 1;
                }
                if self.bytes.get(end) == Some(&b'\'') {
                    self.push(TokKind::Char);
                    self.pos = end + 1;
                } else {
                    self.push(TokKind::Lifetime);
                    self.pos = end;
                }
            }
            Some(_) if self.peek(2) == Some(b'\'') => {
                // `' '`, `'0'`, `'{'` …
                self.push(TokKind::Char);
                self.pos += 3;
            }
            _ => {
                self.push(TokKind::Punct('\''));
                self.pos += 1;
            }
        }
    }

    fn ident_or_raw_string(&mut self) {
        let start = self.pos;
        let mut end = self.pos;
        while end < self.bytes.len()
            && (self.bytes[end] == b'_' || self.bytes[end].is_ascii_alphanumeric())
        {
            end += 1;
        }
        let word = &self.src[start..end];
        if matches!(word, "r" | "br") {
            // Candidate raw string: `r"…"`, `r#"…"#`, `br##"…"##`, …
            let mut hashes = 0usize;
            let mut j = end;
            while self.bytes.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if self.bytes.get(j) == Some(&b'"') {
                self.raw_string(j + 1, hashes);
                return;
            }
            if word == "r" && hashes == 1 {
                // Raw identifier `r#foo`: emit the identifier itself.
                self.pos = end + 1;
                self.ident_or_raw_string();
                return;
            }
        }
        self.push(TokKind::Ident(word.to_owned()));
        self.pos = end;
    }

    /// Scans a raw string whose content starts at `content_start`,
    /// terminated by `"` followed by `hashes` `#`s.
    fn raw_string(&mut self, content_start: usize, hashes: usize) {
        let start_line = self.line;
        let mut i = content_start;
        let end = loop {
            match self.bytes.get(i) {
                None => break i,
                Some(b'\n') => {
                    self.line += 1;
                    i += 1;
                }
                Some(b'"') => {
                    let closes = self.bytes[i + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&b| b == b'#')
                        .count();
                    if closes == hashes {
                        break i;
                    }
                    i += 1;
                }
                Some(_) => i += 1,
            }
        };
        self.pos = (end + 1 + hashes).min(self.bytes.len());
        self.out.tokens.push(Token {
            kind: TokKind::Str(
                self.src
                    .get(content_start..end)
                    .unwrap_or_default()
                    .to_owned(),
            ),
            line: start_line,
        });
    }

    fn number(&mut self) {
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos] == b'_' || self.bytes[self.pos].is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        self.push(TokKind::Num);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn idents_not_matched_in_strings_or_comments() {
        let src = String::from("// HashMap in a comment\n")
            + "/* Instant::now in a block /* nested */ comment */\n"
            + "let s = \"HashMap::new()\";\n"
            + "let t = r#\"raw HashMap\"#;\n"
            + "let real = foo;\n";
        let ids = idents(&src);
        assert!(!ids.iter().any(|i| i == "HashMap"));
        assert!(!ids.iter().any(|i| i == "Instant"));
        assert!(ids.contains(&"foo".to_owned()));
    }

    #[test]
    fn char_vs_lifetime() {
        let lexed = lex("let c = 'x'; fn f<'a>(v: &'a str) {} let nl = '\\n';");
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(chars, 2);
        assert_eq!(lifetimes, 2);
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "/* a\nb */\n\"x\ny\"\nfoo";
        let lexed = lex(src);
        let foo = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Ident("foo".into()))
            .map(|t| t.line);
        assert_eq!(foo, Some(5));
        assert_eq!(lexed.comments[0].line, 1);
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let src = "let s = r##\"contains \"# quote\"##; after";
        let ids = idents(src);
        assert_eq!(ids, vec!["let".to_owned(), "s".into(), "after".into()]);
    }

    #[test]
    fn byte_strings_scan_like_strings() {
        let src = "let b = b\"Instant::now\\\"\"; tail";
        let ids = idents(src);
        assert!(ids.contains(&"tail".to_owned()));
        assert!(!ids.contains(&"Instant".to_owned()));
    }
}
