//! `lint-owners.toml`: the declarative config for the single-writer and
//! panic-reachability families.
//!
//! The file lives at the workspace root next to `lint-baseline.json`.
//! Parsing is a hand-rolled TOML subset (same no-new-deps rule as the
//! JSON renderer): `[section]` / `[[owner]]` headers, `key = "string"`,
//! and `key = [ "a", "b" ]` string arrays (single- or multi-line).
//! Anything else is a hard configuration error — the lint binary exits
//! non-zero rather than silently enforcing half a config.
//!
//! Schema:
//!
//! ```toml
//! [reachability]
//! roots = ["core::Platform::*", "sched::Scheduler::*"]
//!
//! [[owner]]
//! name = "job-state"
//! fields = ["state"]            # `.state = …` writes
//! methods = ["apply_event"]     # `.apply_event(…)` calls
//! path_calls = ["Counter::new"] # `Type::method(…)` calls
//! writers = ["crates/core/src/lifecycle.rs"]
//! why = "single-writer invariant: …"
//! ```

/// One single-writer ownership rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OwnerRule {
    /// Rule identifier (used in finding messages).
    pub name: String,
    /// Field names whose assignment (`.field = …`, `.field += …`) is
    /// owned.
    pub fields: Vec<String>,
    /// Method names whose invocation (`.m(…)` / `m(…)`) is owned.
    pub methods: Vec<String>,
    /// `Type::method` call pairs that are owned.
    pub path_calls: Vec<(String, String)>,
    /// Workspace-relative files allowed to perform the mutation.
    pub writers: Vec<String>,
    /// Human rationale (documentation only).
    pub why: String,
}

/// The parsed workspace config.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OwnersConfig {
    /// Reachability root patterns (see [`crate::reach::matches_root`]).
    /// Empty ⇒ reachability filtering is off and panic budgets fall back
    /// to raw per-file counts.
    pub roots: Vec<String>,
    /// Single-writer rules.
    pub owners: Vec<OwnerRule>,
}

enum Section {
    None,
    Reachability,
    Owner,
}

/// Parses the config text.
///
/// # Errors
///
/// Returns a message naming the offending line for any construct outside
/// the documented subset, an unknown key, or a rule missing
/// `name`/`writers`.
pub fn parse(text: &str) -> Result<OwnersConfig, String> {
    let mut cfg = OwnersConfig::default();
    let mut section = Section::None;
    let mut lines = text.lines().enumerate();

    while let Some((idx, raw)) = lines.next() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        if line == "[reachability]" {
            section = Section::Reachability;
            continue;
        }
        if line == "[[owner]]" {
            section = Section::Owner;
            cfg.owners.push(OwnerRule::default());
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "lint-owners.toml:{lineno}: unknown section `{line}` \
                 (expected [reachability] or [[owner]])"
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "lint-owners.toml:{lineno}: expected `key = value`, got `{line}`"
            ));
        };
        let key = key.trim();
        let mut value = value.trim().to_owned();
        // Multi-line arrays: keep consuming until the closing bracket.
        if value.starts_with('[') && !balanced_array(&value) {
            for (_, cont) in lines.by_ref() {
                value.push(' ');
                value.push_str(strip_comment(cont).trim());
                if balanced_array(&value) {
                    break;
                }
            }
            if !balanced_array(&value) {
                return Err(format!(
                    "lint-owners.toml:{lineno}: unterminated array for `{key}`"
                ));
            }
        }
        let value = value.as_str();
        match section {
            Section::None => {
                return Err(format!(
                    "lint-owners.toml:{lineno}: `{key}` outside any section"
                ));
            }
            Section::Reachability => match key {
                "roots" => cfg.roots = parse_array(value, lineno)?,
                _ => {
                    return Err(format!(
                        "lint-owners.toml:{lineno}: unknown [reachability] key `{key}`"
                    ));
                }
            },
            Section::Owner => {
                let rule = cfg.owners.last_mut().ok_or("no open [[owner]]")?;
                match key {
                    "name" => rule.name = parse_string(value, lineno)?,
                    "why" => rule.why = parse_string(value, lineno)?,
                    "fields" => rule.fields = parse_array(value, lineno)?,
                    "methods" => rule.methods = parse_array(value, lineno)?,
                    "writers" => rule.writers = parse_array(value, lineno)?,
                    "path_calls" => {
                        rule.path_calls = parse_array(value, lineno)?
                            .into_iter()
                            .map(|s| {
                                s.split_once("::")
                                    .map(|(t, m)| (t.to_owned(), m.to_owned()))
                                    .ok_or_else(|| {
                                        format!(
                                            "lint-owners.toml:{lineno}: path_calls entry `{s}` \
                                             is not `Type::method`"
                                        )
                                    })
                            })
                            .collect::<Result<Vec<_>, _>>()?;
                    }
                    _ => {
                        return Err(format!(
                            "lint-owners.toml:{lineno}: unknown [[owner]] key `{key}`"
                        ));
                    }
                }
            }
        }
    }

    for rule in &cfg.owners {
        if rule.name.is_empty() {
            return Err("lint-owners.toml: [[owner]] rule missing `name`".to_owned());
        }
        if rule.writers.is_empty() {
            return Err(format!(
                "lint-owners.toml: owner rule `{}` lists no `writers`",
                rule.name
            ));
        }
        if rule.fields.is_empty() && rule.methods.is_empty() && rule.path_calls.is_empty() {
            return Err(format!(
                "lint-owners.toml: owner rule `{}` guards nothing \
                 (need fields, methods, or path_calls)",
                rule.name
            ));
        }
    }
    Ok(cfg)
}

/// Drops a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Whether every `[` in an accumulating array value has its `]` yet.
fn balanced_array(value: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in value.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| {
            format!("lint-owners.toml:{lineno}: expected a quoted string, got `{value}`")
        })?;
    if inner.contains('"') {
        return Err(format!(
            "lint-owners.toml:{lineno}: embedded quotes are not supported"
        ));
    }
    Ok(inner.to_owned())
}

fn parse_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| {
            format!("lint-owners.toml:{lineno}: expected `[ \"…\", … ]`, got `{value}`")
        })?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(part, lineno)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_round_trip() {
        let text = r#"
# workspace ownership map
[reachability]
roots = [
    "core::Platform::*",
    "sched::Scheduler::*", # rounds
]

[[owner]]
name = "job-state"
fields = ["state"]
methods = ["apply_event"]
writers = ["crates/core/src/lifecycle.rs"]
why = "single writer of job state"

[[owner]]
name = "metric-registration"
path_calls = ["Counter::new", "Gauge::new"]
writers = ["crates/obs/src/metrics.rs"]
"#;
        let cfg = parse(text).expect("parse");
        assert_eq!(cfg.roots.len(), 2);
        assert_eq!(cfg.roots[0], "core::Platform::*");
        assert_eq!(cfg.owners.len(), 2);
        assert_eq!(cfg.owners[0].name, "job-state");
        assert_eq!(cfg.owners[0].fields, vec!["state"]);
        assert_eq!(cfg.owners[0].methods, vec!["apply_event"]);
        assert_eq!(
            cfg.owners[1].path_calls,
            vec![
                ("Counter".to_owned(), "new".to_owned()),
                ("Gauge".to_owned(), "new".to_owned())
            ]
        );
    }

    #[test]
    fn errors_name_the_line() {
        assert!(parse("[mystery]\n")
            .unwrap_err()
            .contains("unknown section"));
        assert!(parse("roots = []\n").unwrap_err().contains("outside any"));
        assert!(parse("[reachability]\nroots = \"x\"\n")
            .unwrap_err()
            .contains("expected `[")); // scalar where array expected
        assert!(parse("[[owner]]\nname = \"x\"\nfields = [\"f\"]\n")
            .unwrap_err()
            .contains("no `writers`"));
        assert!(parse("[[owner]]\nname = \"x\"\nwriters = [\"w\"]\n")
            .unwrap_err()
            .contains("guards nothing"));
        assert!(
            parse("[[owner]]\nname = \"x\"\npath_calls = [\"nomethod\"]\n")
                .unwrap_err()
                .contains("not `Type::method`")
        );
    }

    #[test]
    fn empty_and_comment_only_configs_are_fine() {
        assert_eq!(parse("").expect("empty"), OwnersConfig::default());
        assert_eq!(
            parse("# nothing here\n").expect("comment"),
            OwnersConfig::default()
        );
    }
}
