//! # tacc-lint
//!
//! The workspace determinism & architecture static-analysis pass.
//!
//! The reconstructed evaluation rests on two invariants nothing in the
//! compiler enforces: the simulator is *bit-deterministic* (golden
//! snapshots and the 30-day replay depend on it), and the 4-layer
//! architecture is a *strict DAG* (DESIGN.md documents it). `tacc-lint`
//! makes both machine-checked: a dependency-free, hand-rolled source
//! scanner (comment/string/ident-aware lexer — no `syn`) walks every
//! crate, merges per-file item extraction into a workspace symbol graph,
//! and enforces ten lint families:
//!
//! | Lint | Guards against |
//! |---|---|
//! | `hash-iter` | `HashMap`/`HashSet`/`RandomState` in sim-path crates |
//! | `wall-clock` | `Instant::now` / `SystemTime` outside annotated sites |
//! | `ambient-rng` | `thread_rng` / `rand::random` bypassing `DetRng` |
//! | `layer-dag` | dependency edges violating the documented layer DAG |
//! | `panic-surface` | reachable `unwrap`/`expect`/`panic!`/`todo!` growth vs baseline |
//! | `metric-name` | registry literals not shaped `tacc_<layer>_<name>` |
//! | `single-writer` | owned mutations performed outside the owning module |
//! | `concurrency` | locks/channels/spawns in deterministic layers; guards held across fork–join |
//! | `match-wildcard` | `_` arms in matches over the lifecycle enums |
//! | `allow` | malformed, unknown, or stale suppression comments |
//!
//! v2 layers a cross-crate **symbol table + call graph** on the lexer
//! ([`symbols`] → [`graph`] → [`reach`]): per-file extraction fans out
//! over [`tacc_par::par_map`], merges deterministically, and panic sites
//! are budgeted only when reachable from the sim-path roots declared in
//! `lint-owners.toml` — a CLI-only `expect` no longer consumes budget.
//! The same config file declares the [`owners`] rules behind the
//! `single-writer` family.
//!
//! Legitimate exceptions carry an inline
//! `// tacc-lint: allow(<lint>, reason = "...")` with a mandatory reason;
//! suppressions are reported, and stale or malformed ones are findings
//! themselves, so the suppression surface can never silently rot.
//!
//! Findings render as deterministic text, byte-stable JSON, or SARIF
//! 2.1.0, so `--check` output diffs in CI artifacts are always real
//! regressions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod graph;
pub mod lexer;
pub mod lints;
pub mod manifest;
pub mod owners;
pub mod reach;
pub mod render;
pub mod symbols;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use lints::{FileKind, Lint, ScanCtx};
use render::{Finding, Report};

/// Engine options.
#[derive(Debug, Clone, Copy, Default)]
pub struct Options {
    /// Recompute the panic-surface baseline instead of enforcing it; the
    /// fresh content is returned in [`Report::blessed_baseline`].
    pub bless_baseline: bool,
    /// Attach the byte-stable workspace-graph dump to the report
    /// ([`Report::graph_dump`]); the determinism test compares two.
    pub dump_graph: bool,
}

/// One file queued for scanning.
struct FileJob {
    crate_name: String,
    kind: FileKind,
    rel_path: String,
    abs_path: PathBuf,
}

/// Scans the workspace rooted at `root` (the directory containing
/// `crates/`) and returns the full report.
///
/// # Errors
///
/// Fails when the root has no `crates/` directory or a source file
/// cannot be read.
pub fn run(root: &Path, opts: &Options) -> Result<Report, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "{} has no crates/ directory — pass the workspace root via --root",
            root.display()
        ));
    }

    let mut report = Report::default();
    let mut jobs: Vec<FileJob> = Vec::new();

    for crate_dir in sorted_dirs(&crates_dir)? {
        let manifest_path = crate_dir.join("Cargo.toml");
        let Ok(manifest_text) = fs::read_to_string(&manifest_path) else {
            continue; // not a crate (stray directory)
        };
        let manifest = manifest::parse(&manifest_text);
        if manifest.package.is_empty() {
            continue;
        }
        let rel_manifest = rel(root, &manifest_path);

        // L4 over the declared dependency edges.
        for (dep, line) in &manifest.deps {
            if !manifest::edge_allowed(&manifest.package, dep) {
                report.findings.push(Finding {
                    file: rel_manifest.clone(),
                    line: *line,
                    lint: Lint::LayerDag.name(),
                    message: format!(
                        "`{}` must not depend on `tacc-{dep}`: the edge violates the \
                         documented layer DAG (see DESIGN.md)",
                        manifest.package
                    ),
                });
            }
        }

        let src_dir = crate_dir.join("src");
        if src_dir.is_dir() {
            collect_rs_files(root, &manifest.package, &src_dir, &mut jobs)?;
        }
    }

    report.files_scanned = jobs.len();

    let owners_cfg = load_owners(root)?;

    // Fan the file scans out across the slot-donating pool; results come
    // back in item order, so the report stays deterministic.
    let owners_ref = &owners_cfg;
    let scans = tacc_par::par_map(jobs, move |job| {
        let src = fs::read_to_string(&job.abs_path)
            .map_err(|e| format!("reading {}: {e}", job.rel_path))?;
        let scan = {
            let ctx = ScanCtx {
                crate_name: &job.crate_name,
                kind: job.kind,
                rel_path: &job.rel_path,
                dep_allowed: &manifest::edge_allowed,
                owners: owners_ref,
            };
            lints::scan_source(&ctx, &src)
        };
        Ok::<_, String>((job, scan))
    });

    // First pass: unpack the scans and merge per-file symbols into the
    // workspace graph (walk order is sorted, so the graph — and its
    // dump — is deterministic).
    let mut scanned = Vec::with_capacity(report.files_scanned);
    let mut entries = Vec::with_capacity(report.files_scanned);
    for scan in scans {
        let (job, mut scan) = scan?;
        entries.push(graph::FileEntry {
            crate_name: job.crate_name.clone(),
            rel_path: job.rel_path.clone(),
            bin: job.kind == FileKind::Bin,
            symbols: std::mem::take(&mut scan.symbols),
        });
        scanned.push((job, scan));
    }
    let workspace = graph::build(&entries, &manifest::edge_allowed);
    report.symbols.fns = workspace.fns.len();
    report.symbols.call_edges = workspace.edges.len();

    // Reachability: with roots configured, a panic site only counts
    // against the budget when its innermost enclosing function is
    // reachable from a root; without roots every site counts (legacy
    // per-file behavior, which scratch fixtures rely on).
    let reachable = if owners_cfg.roots.is_empty() {
        None
    } else {
        Some(reach::compute(&workspace, &owners_cfg.roots))
    };
    report.symbols.reachable_fns = match &reachable {
        Some(flags) => flags.iter().filter(|&&r| r).count(),
        None => workspace.fns.len(),
    };
    let mut spans: BTreeMap<&str, Vec<(u32, u32, bool)>> = BTreeMap::new();
    if let Some(flags) = &reachable {
        for (i, f) in workspace.fns.iter().enumerate() {
            spans
                .entry(f.file.as_str())
                .or_default()
                .push((f.start_line, f.end_line, flags[i]));
        }
    }
    if opts.dump_graph {
        report.graph_dump = Some(workspace.to_text());
    }

    let loaded_baseline = load_baseline(root, opts)?;
    let mut panic_counts: BTreeMap<String, u64> = BTreeMap::new();

    for (job, scan) in scanned {
        report.findings.extend(scan.findings);
        report.suppressed.extend(scan.suppressed);
        if scan.panic_lines.is_empty() {
            continue;
        }
        let kept: Vec<u32> = match spans.get(job.rel_path.as_str()) {
            None => scan.panic_lines.clone(),
            Some(file_spans) => scan
                .panic_lines
                .iter()
                .copied()
                .filter(|&line| {
                    // Innermost enclosing fn = max start among spans
                    // containing the line; a site outside every fn is
                    // conservatively kept.
                    file_spans
                        .iter()
                        .filter(|&&(a, b, _)| line >= a && line <= b)
                        .max_by_key(|&&(a, _, _)| a)
                        .is_none_or(|&(_, _, reachable)| reachable)
                })
                .collect(),
        };
        report.symbols.panic_sites_skipped += scan.panic_lines.len() - kept.len();
        if !kept.is_empty() {
            panic_counts.insert(job.rel_path.clone(), kept.len() as u64);
            budget_panic_sites(&job.rel_path, &kept, &loaded_baseline, opts, &mut report);
        }
    }

    // Budgeted files that disappeared (or dropped to zero) show up as
    // shrinkage so the baseline can be ratcheted down.
    for (file, budget) in &loaded_baseline.panic_surface {
        if *budget > 0 && !panic_counts.contains_key(file) {
            report.baseline_shrunk.push((file.clone(), 0, *budget));
        }
    }

    if opts.bless_baseline {
        report.blessed_baseline = Some(baseline::render(&panic_counts));
    }

    report.findings.sort();
    report.suppressed.sort();
    report.baseline_shrunk.sort();
    Ok(report)
}

/// Loads `lint-owners.toml` from the workspace root. A missing file is
/// an empty config (single-writer off, reachability off); a malformed
/// one is a hard error — half-enforced ownership is worse than none.
fn load_owners(root: &Path) -> Result<owners::OwnersConfig, String> {
    match fs::read_to_string(root.join("lint-owners.toml")) {
        Ok(text) => owners::parse(&text),
        Err(_) => Ok(owners::OwnersConfig::default()),
    }
}

fn load_baseline(root: &Path, opts: &Options) -> Result<baseline::Baseline, String> {
    if opts.bless_baseline {
        return Ok(baseline::Baseline::default());
    }
    match fs::read_to_string(root.join("lint-baseline.json")) {
        Ok(text) => baseline::parse(&text),
        Err(_) => Ok(baseline::Baseline::default()),
    }
}

fn budget_panic_sites(
    rel_path: &str,
    lines: &[u32],
    loaded: &baseline::Baseline,
    opts: &Options,
    report: &mut Report,
) {
    if opts.bless_baseline {
        return;
    }
    let found = lines.len() as u64;
    let budget = loaded.panic_surface.get(rel_path).copied().unwrap_or(0);
    if found > budget {
        report.findings.push(Finding {
            file: rel_path.to_owned(),
            line: lines[0],
            lint: Lint::PanicSurface.name(),
            message: format!(
                "{found} panic site(s) (unwrap/expect/panic!/todo!) exceed the committed \
                 baseline budget of {budget} — handle the error, annotate with \
                 tacc-lint: allow(panic-surface, ...), or re-bless lint-baseline.json"
            ),
        });
    } else if found < budget {
        report
            .baseline_shrunk
            .push((rel_path.to_owned(), found, budget));
    }
}

/// Child directories of `dir`, sorted by name for deterministic output.
fn sorted_dirs(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let mut dirs: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    Ok(dirs)
}

/// Recursively collects `.rs` files under `dir` (sorted), classifying
/// `src/bin/**` as binary targets.
fn collect_rs_files(
    root: &Path,
    crate_name: &str,
    dir: &Path,
    jobs: &mut Vec<FileJob>,
) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(root, crate_name, &path, jobs)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel_path = rel(root, &path);
            let kind = if rel_path.contains("/src/bin/") {
                FileKind::Bin
            } else {
                FileKind::Lib
            };
            jobs.push(FileJob {
                crate_name: crate_name.to_owned(),
                kind,
                rel_path,
                abs_path: path,
            });
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes (stable across hosts).
fn rel(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
