//! `lint` — the tacc-rs workspace static-analysis gate.
//!
//! ```text
//! cargo run -p tacc-lint --release -- --check              # CI gate
//! cargo run -p tacc-lint --release -- --json report.json   # artifact
//! cargo run -p tacc-lint --release -- --sarif lint.sarif   # code scanning
//! cargo run -p tacc-lint --release -- --bless-baseline     # ratchet L5
//! cargo run -p tacc-lint --release -- --bench BENCH_hotpath.json
//! ```

// The lint binary is a CLI: its report goes to stdout by design.
#![allow(clippy::print_stdout)]

use std::path::PathBuf;
use std::process::ExitCode;

use tacc_lint::{run, Options};

struct Cli {
    root: PathBuf,
    check: bool,
    quiet: bool,
    json_path: Option<PathBuf>,
    sarif_path: Option<PathBuf>,
    bench_path: Option<PathBuf>,
    options: Options,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        root: PathBuf::from("."),
        check: false,
        quiet: false,
        json_path: None,
        sarif_path: None,
        bench_path: None,
        options: Options::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                cli.root = PathBuf::from(args.next().ok_or("--root needs a path")?);
            }
            "--json" => {
                cli.json_path = Some(PathBuf::from(args.next().ok_or("--json needs a path")?));
            }
            "--sarif" => {
                cli.sarif_path = Some(PathBuf::from(args.next().ok_or("--sarif needs a path")?));
            }
            "--bench" => {
                cli.bench_path = Some(PathBuf::from(args.next().ok_or("--bench needs a path")?));
            }
            "--jobs" => {
                let n: usize = args
                    .next()
                    .ok_or("--jobs needs a count")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                tacc_par::set_parallelism(n);
            }
            "--check" => cli.check = true,
            "--quiet" => cli.quiet = true,
            "--bless-baseline" => cli.options.bless_baseline = true,
            "--help" | "-h" => {
                println!(
                    "lint: tacc-rs workspace determinism & architecture checks\n\n\
                     usage: lint [--root PATH] [--check] [--json PATH] [--sarif PATH]\n\
                     \x20      [--bench PATH] [--jobs N] [--bless-baseline] [--quiet]\n\n\
                     --root PATH        workspace root (default: .)\n\
                     --check            exit nonzero when findings exist (CI gate)\n\
                     --json PATH        also write the byte-stable JSON report\n\
                     --sarif PATH       also write a SARIF 2.1.0 report (code scanning)\n\
                     --bench PATH       splice analyzer cost into the given BENCH json\n\
                     --jobs N           bound the scan parallelism\n\
                     --bless-baseline   rewrite lint-baseline.json from the current tree\n\
                     --quiet            suppress the text report"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(err) => {
            eprintln!("lint: {err}");
            return ExitCode::from(2);
        }
    };
    // Analyzer cost for the --bench section: wall time is informational
    // only (never compared by the perf gate), measured at the CLI edge.
    // tacc-lint: allow(wall-clock, reason = "measurement-only analyzer cost for BENCH json")
    let started = std::time::Instant::now();
    let report = match run(&cli.root, &cli.options) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("lint: {err}");
            return ExitCode::from(2);
        }
    };
    let wall_secs = started.elapsed().as_secs_f64();
    if !cli.quiet {
        print!("{}", report.to_text());
    }
    if let Some(path) = &cli.json_path {
        if let Err(err) = std::fs::write(path, report.to_json()) {
            eprintln!("lint: writing {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &cli.sarif_path {
        if let Err(err) = std::fs::write(path, report.to_sarif()) {
            eprintln!("lint: writing {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &cli.bench_path {
        let doc = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".to_owned());
        let section = format!(
            "{{\n    \"files_scanned\": {},\n    \"fns\": {},\n    \"call_edges\": {},\n    \
             \"reachable_fns\": {},\n    \"panic_sites_skipped\": {},\n    \
             \"findings\": {},\n    \"suppressions\": {},\n    \
             \"wall_secs_informational\": {:.3}\n  }}",
            report.files_scanned,
            report.symbols.fns,
            report.symbols.call_edges,
            report.symbols.reachable_fns,
            report.symbols.panic_sites_skipped,
            report.findings.len(),
            report.suppressed.len(),
            wall_secs
        );
        let spliced = tacc_lint::render::splice_top_level(&doc, "lint", &section);
        if let Err(err) = std::fs::write(path, spliced) {
            eprintln!("lint: writing {}: {err}", path.display());
            return ExitCode::from(2);
        }
        if !cli.quiet {
            println!("lint: refreshed the lint section of {}", path.display());
        }
    }
    if let Some(content) = &report.blessed_baseline {
        let path = cli.root.join("lint-baseline.json");
        if let Err(err) = std::fs::write(&path, content) {
            eprintln!("lint: writing {}: {err}", path.display());
            return ExitCode::from(2);
        }
        if !cli.quiet {
            println!("lint: blessed {}", path.display());
        }
    }
    if cli.check && !report.clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
