//! `lint` — the tacc-rs workspace static-analysis gate.
//!
//! ```text
//! cargo run -p tacc-lint --release -- --check              # CI gate
//! cargo run -p tacc-lint --release -- --json report.json   # artifact
//! cargo run -p tacc-lint --release -- --bless-baseline     # ratchet L5
//! ```

// The lint binary is a CLI: its report goes to stdout by design.
#![allow(clippy::print_stdout)]

use std::path::PathBuf;
use std::process::ExitCode;

use tacc_lint::{run, Options};

struct Cli {
    root: PathBuf,
    check: bool,
    quiet: bool,
    json_path: Option<PathBuf>,
    options: Options,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        root: PathBuf::from("."),
        check: false,
        quiet: false,
        json_path: None,
        options: Options::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                cli.root = PathBuf::from(args.next().ok_or("--root needs a path")?);
            }
            "--json" => {
                cli.json_path = Some(PathBuf::from(args.next().ok_or("--json needs a path")?));
            }
            "--jobs" => {
                let n: usize = args
                    .next()
                    .ok_or("--jobs needs a count")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                tacc_par::set_parallelism(n);
            }
            "--check" => cli.check = true,
            "--quiet" => cli.quiet = true,
            "--bless-baseline" => cli.options.bless_baseline = true,
            "--help" | "-h" => {
                println!(
                    "lint: tacc-rs workspace determinism & architecture checks\n\n\
                     usage: lint [--root PATH] [--check] [--json PATH] [--jobs N]\n\
                     \x20      [--bless-baseline] [--quiet]\n\n\
                     --root PATH        workspace root (default: .)\n\
                     --check            exit nonzero when findings exist (CI gate)\n\
                     --json PATH        also write the byte-stable JSON report\n\
                     --jobs N           bound the scan parallelism\n\
                     --bless-baseline   rewrite lint-baseline.json from the current tree\n\
                     --quiet            suppress the text report"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(err) => {
            eprintln!("lint: {err}");
            return ExitCode::from(2);
        }
    };
    let report = match run(&cli.root, &cli.options) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("lint: {err}");
            return ExitCode::from(2);
        }
    };
    if !cli.quiet {
        print!("{}", report.to_text());
    }
    if let Some(path) = &cli.json_path {
        if let Err(err) = std::fs::write(path, report.to_json()) {
            eprintln!("lint: writing {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(content) = &report.blessed_baseline {
        let path = cli.root.join("lint-baseline.json");
        if let Err(err) = std::fs::write(&path, content) {
            eprintln!("lint: writing {}: {err}", path.display());
            return ExitCode::from(2);
        }
        if !cli.quiet {
            println!("lint: blessed {}", path.display());
        }
    }
    if cli.check && !report.clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
