//! Per-file item extraction: the front half of the workspace symbol
//! graph.
//!
//! One pass over the lexed token stream recovers the items the v2
//! analyses need — function definitions with their line spans and
//! enclosing `impl` type, call references (both `name(...)` calls and
//! `path::name` fn-pointer references), `use tacc_*` edges, and the
//! lock/fork-join sites the concurrency family inspects. This is not a
//! parser: it tracks brace/angle depth far enough to attribute items and
//! never needs to understand expressions. Extraction is pure, so fixture
//! tests drive it from string literals.

use crate::lexer::{TokKind, Token};

/// One `name(…)` call or `path::name` reference inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallRef {
    /// Callee identifier.
    pub name: String,
    /// Path qualifier immediately before `::name`, when present
    /// (`Scheduler` in `Scheduler::new(...)`).
    pub qualifier: Option<String>,
    /// 1-based source line of the reference.
    pub line: u32,
}

/// A `.lock()` call or a fork–join entry (`par_map(` / `thread::scope(`)
/// with its brace depth relative to the enclosing function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthSite {
    /// 1-based source line.
    pub line: u32,
    /// Brace depth relative to the function body (body statements = 1).
    pub depth: u32,
}

/// One extracted function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSym {
    /// The function's identifier.
    pub name: String,
    /// Enclosing `impl` type name, when defined inside an impl block.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub start_line: u32,
    /// 1-based line of the body's closing `}`.
    pub end_line: u32,
    /// Whether the definition sits inside a `#[cfg(test)]` / `#[test]`
    /// region (test code neither roots nor propagates reachability).
    pub is_test: bool,
    /// Call references made from the body (innermost function wins for
    /// nested definitions).
    pub calls: Vec<CallRef>,
    /// `.lock()` sites in the body, with relative depth.
    pub locks: Vec<DepthSite>,
    /// Fork–join entries (`par_map(`, `thread::scope(`) in the body.
    pub forks: Vec<DepthSite>,
}

/// Everything extracted from one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileSymbols {
    /// Function definitions in source order.
    pub fns: Vec<FnSym>,
    /// `tacc_*` source references: `(short crate name, line)`.
    pub uses: Vec<(String, u32)>,
}

/// Words that look like calls but are control flow or item syntax.
fn is_keyword(word: &str) -> bool {
    matches!(
        word,
        "if" | "else"
            | "while"
            | "for"
            | "in"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "fn"
            | "impl"
            | "pub"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "union"
            | "trait"
            | "where"
            | "move"
            | "unsafe"
            | "ref"
            | "mut"
            | "as"
            | "dyn"
            | "static"
            | "const"
            | "type"
            | "self"
            | "Self"
            | "super"
            | "crate"
            | "await"
            | "async"
    )
}

/// An open (still unclosed) function during the scan.
struct OpenFn {
    sym: FnSym,
    /// Brace depth of the body's opening `{` (the body runs while the
    /// global depth stays >= this value).
    body_depth: u32,
}

/// An open impl block during the scan.
struct OpenImpl {
    type_name: String,
    /// Depth of the impl block's opening `{`.
    depth: u32,
}

/// Extracts the file's symbols from its full token stream.
///
/// `test_ranges` are the inclusive line ranges covered by
/// `#[cfg(test)]` / `#[test]` items (see `lints::test_ranges`).
pub fn extract(toks: &[Token], test_ranges: &[(u32, u32)]) -> FileSymbols {
    let in_test = |line: u32| test_ranges.iter().any(|&(a, b)| line >= a && line <= b);
    let ident = |i: usize| match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize, c: char| matches!(toks.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c);

    let mut out = FileSymbols::default();
    let mut depth: u32 = 0;
    let mut open_fns: Vec<OpenFn> = Vec::new();
    let mut open_impls: Vec<OpenImpl> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        let line = toks[i].line;
        match &toks[i].kind {
            TokKind::Punct('{') => {
                depth += 1;
                i += 1;
            }
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                while let Some(mut done) = open_fns.pop_if(|f| depth < f.body_depth) {
                    done.sym.end_line = line;
                    out.fns.push(done.sym);
                }
                while open_impls.pop_if(|b| depth < b.depth).is_some() {}
                i += 1;
            }
            TokKind::Ident(word) if word == "impl" => {
                // Scan the header up to its `{`; `impl Trait for Type`
                // takes the ident after `for`, otherwise the first ident
                // at angle-depth 0 (skipping the generic intro).
                let mut angle = 0i32;
                let mut after_for = false;
                let mut type_name: Option<String> = None;
                let mut j = i + 1;
                while j < toks.len() {
                    match &toks[j].kind {
                        TokKind::Punct('{') | TokKind::Punct(';') => break,
                        TokKind::Punct('<') => angle += 1,
                        TokKind::Punct('>') => angle -= 1,
                        TokKind::Ident(w) if angle == 0 && w == "for" => {
                            after_for = true;
                            type_name = None;
                        }
                        TokKind::Ident(w) if angle == 0 => {
                            let relevant = type_name.is_none() || after_for;
                            if relevant && type_name.is_none() && !matches!(w.as_str(), "dyn") {
                                type_name = Some(w.clone());
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if j < toks.len() && punct(j, '{') {
                    depth += 1;
                    if let Some(name) = type_name {
                        open_impls.push(OpenImpl {
                            depth,
                            type_name: name,
                        });
                    }
                }
                i = j + 1;
            }
            TokKind::Ident(word) if word == "fn" => {
                let Some(name) = ident(i + 1) else {
                    i += 1;
                    continue;
                };
                let name = name.to_owned();
                // Walk the signature to the body `{` or a bodiless `;`.
                let mut paren = 0i32;
                let mut j = i + 2;
                let mut body = None;
                while j < toks.len() {
                    match &toks[j].kind {
                        TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
                        TokKind::Punct(')') | TokKind::Punct(']') => paren -= 1,
                        TokKind::Punct('{') if paren == 0 => {
                            body = Some(j);
                            break;
                        }
                        TokKind::Punct(';') if paren == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(open) = body {
                    depth += 1;
                    open_fns.push(OpenFn {
                        sym: FnSym {
                            name,
                            impl_type: open_impls.last().map(|b| b.type_name.clone()),
                            start_line: line,
                            end_line: toks[open].line,
                            is_test: in_test(line),
                            calls: Vec::new(),
                            locks: Vec::new(),
                            forks: Vec::new(),
                        },
                        body_depth: depth,
                    });
                    i = open + 1;
                } else {
                    i = j + 1;
                }
            }
            TokKind::Ident(word) if !is_keyword(word) => {
                if word.starts_with("tacc_") {
                    let short = word.trim_start_matches("tacc_");
                    if !short.is_empty() {
                        out.uses.push((short.to_owned(), line));
                    }
                }
                if let Some(open) = open_fns.last_mut() {
                    let rel_depth = depth + 1 - open.body_depth;
                    let qualified = i >= 2 && punct(i - 1, ':') && punct(i - 2, ':');
                    let qualifier = if qualified {
                        ident(i.wrapping_sub(3)).map(str::to_owned)
                    } else {
                        None
                    };
                    let called = punct(i + 1, '(');
                    let is_macro = punct(i + 1, '!');
                    if (called || qualified) && !is_macro {
                        open.sym.calls.push(CallRef {
                            name: word.clone(),
                            qualifier,
                            line,
                        });
                    }
                    // Concurrency sites for the lock-across-fork check.
                    if called && word == "lock" && punct(i.wrapping_sub(1), '.') {
                        open.sym.locks.push(DepthSite {
                            line,
                            depth: rel_depth,
                        });
                    }
                    let forked = (called && word == "par_map")
                        || (word == "scope"
                            && called
                            && qualified
                            && ident(i.wrapping_sub(3)) == Some("thread"));
                    if forked {
                        open.sym.forks.push(DepthSite {
                            line,
                            depth: rel_depth,
                        });
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    // Unterminated bodies (truncated files): close at the last line.
    let last_line = toks.last().map_or(1, |t| t.line);
    while let Some(mut open) = open_fns.pop() {
        open.sym.end_line = last_line;
        out.fns.push(open.sym);
    }
    // Source order regardless of nesting-induced pop order.
    out.fns.sort_by_key(|f| (f.start_line, f.end_line));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn extract_src(src: &str) -> FileSymbols {
        let lexed = lex(src);
        let ranges = crate::lints::test_ranges(&lexed.tokens);
        extract(&lexed.tokens, &ranges)
    }

    #[test]
    fn plain_and_generic_fns_with_spans() {
        let src = "fn alpha() {\n    beta();\n}\n\
                   fn beta<T: Clone>(x: T) -> T {\n    x.clone()\n}\n";
        let syms = extract_src(src);
        assert_eq!(syms.fns.len(), 2);
        assert_eq!(syms.fns[0].name, "alpha");
        assert_eq!((syms.fns[0].start_line, syms.fns[0].end_line), (1, 3));
        assert_eq!(syms.fns[0].calls.len(), 1);
        assert_eq!(syms.fns[0].calls[0].name, "beta");
        assert_eq!(syms.fns[1].name, "beta");
        assert!(syms.fns[1].impl_type.is_none());
        assert_eq!(syms.fns[1].calls[0].name, "clone");
    }

    #[test]
    fn nested_impls_attribute_methods_to_the_inner_type() {
        let src = "impl Outer {\n\
                   fn a(&self) {\n\
                   struct Inner;\n\
                   impl Inner {\n\
                   fn b(&self) { helper(); }\n\
                   }\n\
                   }\n\
                   }\n";
        let syms = extract_src(src);
        let a = syms.fns.iter().find(|f| f.name == "a").expect("a");
        let b = syms.fns.iter().find(|f| f.name == "b").expect("b");
        assert_eq!(a.impl_type.as_deref(), Some("Outer"));
        assert_eq!(b.impl_type.as_deref(), Some("Inner"));
        assert_eq!(b.calls[0].name, "helper");
    }

    #[test]
    fn trait_impl_takes_the_type_after_for() {
        let src = "impl<T> Display for Wrapper<T> {\n\
                   fn fmt(&self) { inner(); }\n\
                   }\n";
        let syms = extract_src(src);
        assert_eq!(syms.fns[0].impl_type.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let src = "fn lib() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn helper() { target(); }\n\
                   }\n";
        let syms = extract_src(src);
        let lib = syms.fns.iter().find(|f| f.name == "lib").expect("lib");
        let helper = syms.fns.iter().find(|f| f.name == "helper").expect("h");
        assert!(!lib.is_test);
        assert!(helper.is_test);
    }

    #[test]
    fn path_references_and_qualifiers() {
        let src = "fn reg() {\n\
                   let f = experiments::run;\n\
                   let s = Scheduler::new(4);\n\
                   }\n";
        let syms = extract_src(src);
        let calls = &syms.fns[0].calls;
        let run = calls.iter().find(|c| c.name == "run").expect("run ref");
        assert_eq!(run.qualifier.as_deref(), Some("experiments"));
        let new = calls.iter().find(|c| c.name == "new").expect("new call");
        assert_eq!(new.qualifier.as_deref(), Some("Scheduler"));
    }

    #[test]
    fn bodiless_trait_methods_are_skipped() {
        let src = "trait T {\n    fn decl(&self);\n    fn with_body(&self) { x(); }\n}\n";
        let syms = extract_src(src);
        assert_eq!(syms.fns.len(), 1);
        assert_eq!(syms.fns[0].name, "with_body");
    }

    #[test]
    fn locks_and_forks_carry_relative_depth() {
        let src = "fn f(m: &M) {\n\
                   let g = m.lock();\n\
                   { par_map(v, w); }\n\
                   thread::scope(|s| {});\n\
                   }\n";
        let syms = extract_src(src);
        let f = &syms.fns[0];
        assert_eq!(f.locks, vec![DepthSite { line: 2, depth: 1 }]);
        assert_eq!(f.forks.len(), 2);
        assert_eq!(f.forks[0], DepthSite { line: 3, depth: 2 });
        assert_eq!(f.forks[1], DepthSite { line: 4, depth: 1 });
    }

    #[test]
    fn tacc_uses_are_recorded() {
        let src = "use tacc_par::par_map;\nfn f() { tacc_par::set_parallelism(1); }\n";
        let syms = extract_src(src);
        assert!(syms.uses.iter().any(|(c, l)| c == "par" && *l == 1));
        assert!(syms.uses.iter().any(|(c, l)| c == "par" && *l == 2));
    }

    #[test]
    fn macro_names_are_not_calls() {
        let src = "fn f() { println!(\"x\"); real(); }\n";
        let syms = extract_src(src);
        let names: Vec<&str> = syms.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }
}
