//! The ten lint families, the `#[cfg(test)]` region tracker, and the
//! `// tacc-lint: allow(...)` suppression grammar.

use crate::lexer::{lex, Comment, TokKind, Token};
use crate::owners::OwnersConfig;
use crate::render::{Finding, Suppressed};
use crate::symbols::{self, FileSymbols};

/// A lint family enforced by the scanner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// L1: `HashMap`/`HashSet`/`RandomState` in a simulation-path crate.
    HashIter,
    /// L2: `Instant::now` / `SystemTime` outside designated sites.
    WallClock,
    /// L3: ambient randomness (`thread_rng`, `rand::random`).
    AmbientRng,
    /// L4: a dependency edge that violates the layer DAG.
    LayerDag,
    /// L5: `unwrap`/`expect`/`panic!`/`todo!` in non-test library code,
    /// budgeted against `lint-baseline.json`.
    PanicSurface,
    /// L6: metric registration literal not shaped `tacc_<layer>_<name>`.
    MetricName,
    /// L7: a mutation owned by a single writer (per `lint-owners.toml`)
    /// performed outside the owning module.
    SingleWriter,
    /// L8: shared-state concurrency primitives (`Mutex`, channels,
    /// `thread::spawn`, …) inside a deterministic layer, or a lock guard
    /// held across a fork–join boundary anywhere.
    Concurrency,
    /// L9: a bare wildcard `_` arm in a match over the lifecycle enums
    /// (`JobState`/`JobEvent`/`JobEventKind`).
    MatchWildcard,
    /// Meta: a malformed, unknown, or unused suppression comment.
    Allow,
}

impl Lint {
    /// The lint's stable name (used in reports and allow comments).
    pub fn name(self) -> &'static str {
        match self {
            Lint::HashIter => "hash-iter",
            Lint::WallClock => "wall-clock",
            Lint::AmbientRng => "ambient-rng",
            Lint::LayerDag => "layer-dag",
            Lint::PanicSurface => "panic-surface",
            Lint::MetricName => "metric-name",
            Lint::SingleWriter => "single-writer",
            Lint::Concurrency => "concurrency",
            Lint::MatchWildcard => "match-wildcard",
            Lint::Allow => "allow",
        }
    }

    /// Parses a name as used inside an allow comment. The meta `allow`
    /// family cannot itself be suppressed.
    pub fn suppressible_from_name(name: &str) -> Option<Lint> {
        match name {
            "hash-iter" => Some(Lint::HashIter),
            "wall-clock" => Some(Lint::WallClock),
            "ambient-rng" => Some(Lint::AmbientRng),
            "layer-dag" => Some(Lint::LayerDag),
            "panic-surface" => Some(Lint::PanicSurface),
            "metric-name" => Some(Lint::MetricName),
            "single-writer" => Some(Lint::SingleWriter),
            "concurrency" => Some(Lint::Concurrency),
            "match-wildcard" => Some(Lint::MatchWildcard),
            _ => None,
        }
    }
}

/// Every lint family, in report order.
pub const ALL_LINTS: [Lint; 10] = [
    Lint::Allow,
    Lint::AmbientRng,
    Lint::Concurrency,
    Lint::HashIter,
    Lint::LayerDag,
    Lint::MatchWildcard,
    Lint::MetricName,
    Lint::PanicSurface,
    Lint::SingleWriter,
    Lint::WallClock,
];

/// Crates whose decision paths feed the bit-deterministic simulation:
/// unordered-iteration containers are banned here (L1).
pub const SIM_PATH_CRATES: [&str; 6] = ["storage", "compiler", "sched", "exec", "cluster", "core"];

/// Crates exempt from the wall-clock lint: the fork–join pool measures
/// *host* time by design and never feeds it back into simulated
/// decisions. The bench harness is deliberately NOT exempt — its
/// regression gates compare deterministic work counters, so each of its
/// few intentional wall-clock reads carries an explicit allow annotation.
pub const WALL_CLOCK_EXEMPT_CRATES: [&str; 1] = ["par"];

/// Crates that must stay free of shared-state concurrency (L8): the
/// deterministic replay core. The fork–join pool (`par`), the harness
/// (`bench`), observability plumbing (`obs`), and the `taccd` service
/// edge (whose accept loop, per-connection threads, and single-writer
/// engine channel are load-bearing) are deliberately NOT listed —
/// concurrency belongs at the edge, determinism in the core.
pub const CONCURRENCY_CLEAN_CRATES: [&str; 8] = [
    "cluster", "compiler", "core", "exec", "sched", "sim", "storage", "workload",
];

/// Enums whose matches must stay exhaustive (L9): the lifecycle state
/// machine is checked against `TRANSITION_MATRIX`, and a wildcard arm
/// would silently absorb any state added later.
pub const LIFECYCLE_ENUMS: [&str; 3] = ["JobState", "JobEvent", "JobEventKind"];

/// Layer names accepted as the second segment of a metric name (L6).
pub const METRIC_LAYERS: [&str; 16] = [
    "bench", "cluster", "compiler", "core", "exec", "lint", "metrics", "obs", "par", "sched",
    "sim", "storage", "taccd", "tcloud", "test", "workload",
];

/// How a source file participates in the scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: all families apply.
    Lib,
    /// A binary target (`src/bin/…`): tooling entry points; exempt from
    /// the library-only families (L1/L2/L5/L6) but not from ambient
    /// randomness or the layer DAG.
    Bin,
}

/// Per-file scan context.
pub struct ScanCtx<'a> {
    /// Short crate name (`core`, `sched`, …) the file belongs to.
    pub crate_name: &'a str,
    /// Library or binary target.
    pub kind: FileKind,
    /// Workspace-relative path used in findings.
    pub rel_path: &'a str,
    /// Whether `crate_name` may depend on the given crate (L4).
    pub dep_allowed: &'a (dyn Fn(&str, &str) -> bool + Sync),
    /// Single-writer rules and reachability roots (L7); an empty config
    /// disables the family.
    pub owners: &'a OwnersConfig,
}

/// The outcome of scanning one file.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Hard findings (everything except budgeted panic-surface sites).
    pub findings: Vec<Finding>,
    /// Findings silenced by a well-formed allow comment.
    pub suppressed: Vec<Suppressed>,
    /// Unsuppressed panic-surface site lines (library files only); the
    /// engine budgets these against the committed baseline, after
    /// reachability filtering.
    pub panic_lines: Vec<u32>,
    /// Extracted items and call references, merged workspace-wide into
    /// the symbol graph by the engine.
    pub symbols: FileSymbols,
}

/// A parsed `tacc-lint: allow(...)` directive.
struct AllowDirective {
    line: u32,
    lint: Lint,
    reason: String,
    used: bool,
}

/// Scans one file's source under `ctx`. Pure: no filesystem access, so
/// fixture tests can drive every family from string literals.
pub fn scan_source(ctx: &ScanCtx<'_>, src: &str) -> FileScan {
    let lexed = lex(src);
    let test_ranges = test_ranges(&lexed.tokens);
    let in_test = |line: u32| test_ranges.iter().any(|&(a, b)| line >= a && line <= b);

    let mut scan = FileScan::default();
    let mut allows = parse_allows(ctx.rel_path, &lexed.comments, &mut scan.findings);
    let mut raw: Vec<Finding> = Vec::new();

    let toks: Vec<&Token> = lexed.tokens.iter().filter(|t| !in_test(t.line)).collect();
    lint_tokens(ctx, &toks, &mut raw);
    if ctx.kind == FileKind::Lib {
        lint_match_wildcards(ctx, &toks, &mut raw);
    }
    scan.symbols = symbols::extract(&lexed.tokens, &test_ranges);
    lint_lock_across_fork(ctx, &scan.symbols, &mut raw);

    // Suppression: an allow on the finding's line, or on the line above.
    for finding in raw {
        let hit = allows.iter_mut().find(|a| {
            a.lint.name() == finding.lint && (a.line == finding.line || a.line + 1 == finding.line)
        });
        match hit {
            Some(allow) => {
                allow.used = true;
                scan.suppressed.push(Suppressed {
                    reason: allow.reason.clone(),
                    finding,
                });
            }
            None if finding.lint == Lint::PanicSurface.name() => {
                scan.panic_lines.push(finding.line);
            }
            None => scan.findings.push(finding),
        }
    }

    for allow in allows.iter().filter(|a| !a.used) {
        scan.findings.push(Finding {
            lint: Lint::Allow.name(),
            file: ctx.rel_path.to_owned(),
            line: allow.line,
            message: format!(
                "stale suppression: allow({}) matches no finding on this or the next line",
                allow.lint.name()
            ),
        });
    }
    scan.findings.sort();
    scan.suppressed.sort();
    scan
}

fn finding(ctx: &ScanCtx<'_>, lint: Lint, line: u32, message: String) -> Finding {
    Finding {
        lint: lint.name(),
        file: ctx.rel_path.to_owned(),
        line,
        message,
    }
}

fn lint_tokens(ctx: &ScanCtx<'_>, toks: &[&Token], out: &mut Vec<Finding>) {
    let lib = ctx.kind == FileKind::Lib;
    let sim_path = SIM_PATH_CRATES.contains(&ctx.crate_name);
    let wall_clock = lib && !WALL_CLOCK_EXEMPT_CRATES.contains(&ctx.crate_name);

    let ident = |i: usize| match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize, c: char| matches!(toks.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c);
    let string = |i: usize| match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Str(s)) => Some(s.as_str()),
        _ => None,
    };

    // Lookahead (`i + 1`…) drives the matching, so an index loop is the idiom.
    #[allow(clippy::needless_range_loop)]
    for i in 0..toks.len() {
        let line = toks[i].line;
        let Some(word) = ident(i) else { continue };

        // L1 hash-iter.
        if lib && sim_path && matches!(word, "HashMap" | "HashSet" | "RandomState") {
            out.push(finding(
                ctx,
                Lint::HashIter,
                line,
                format!(
                    "{word} in simulation-path crate `{}`: unordered iteration can leak \
                     into decisions — use BTreeMap/BTreeSet or prove non-iteration",
                    ctx.crate_name
                ),
            ));
        }

        // L2 wall-clock.
        if wall_clock {
            if word == "Instant"
                && punct(i + 1, ':')
                && punct(i + 2, ':')
                && ident(i + 3) == Some("now")
            {
                out.push(finding(
                    ctx,
                    Lint::WallClock,
                    line,
                    "Instant::now() in a simulation path: wall-clock reads break replay \
                     determinism — use the virtual clock, or annotate a measurement-only site"
                        .to_owned(),
                ));
            }
            if word == "SystemTime" {
                out.push(finding(
                    ctx,
                    Lint::WallClock,
                    line,
                    "SystemTime in a simulation path: wall-clock reads break replay \
                     determinism — use the virtual clock"
                        .to_owned(),
                ));
            }
        }

        // L3 ambient-rng (applies to bins too: a random tool flag would
        // still poison reproducibility).
        if word == "thread_rng"
            || (word == "rand"
                && punct(i + 1, ':')
                && punct(i + 2, ':')
                && ident(i + 3) == Some("random"))
        {
            out.push(finding(
                ctx,
                Lint::AmbientRng,
                line,
                "ambient randomness: all randomness must flow from seeded tacc_sim::DetRng \
                 streams"
                    .to_owned(),
            ));
        }

        // L4 layer-dag (source-level `tacc_*` references).
        if lib || ctx.kind == FileKind::Bin {
            if let Some(target) = word.strip_prefix("tacc_") {
                if !target.is_empty()
                    && target != ctx.crate_name
                    && crate::manifest::rank(target).is_some()
                    && !(ctx.dep_allowed)(ctx.crate_name, target)
                {
                    out.push(finding(
                        ctx,
                        Lint::LayerDag,
                        line,
                        format!(
                            "`{}` must not reference `tacc_{target}`: the edge violates the \
                             documented layer DAG (see DESIGN.md)",
                            ctx.crate_name
                        ),
                    ));
                }
            }
        }

        // L5 panic-surface.
        if lib {
            let call = punct(i + 1, '(');
            let bang = punct(i + 1, '!');
            let hit = match word {
                "unwrap" | "expect" if call => true,
                "panic" | "todo" | "unimplemented" if bang => true,
                _ => false,
            };
            if hit {
                out.push(finding(
                    ctx,
                    Lint::PanicSurface,
                    line,
                    format!("panic site `{word}` in non-test library code"),
                ));
            }
        }

        // L7 single-writer ownership (declarative, from lint-owners.toml;
        // applies to bins too — a CLI poking job state is just as rogue).
        for rule in &ctx.owners.owners {
            if rule.writers.iter().any(|w| w == ctx.rel_path) {
                continue;
            }
            let op_assign = matches!(
                toks.get(i + 1).map(|t| &t.kind),
                Some(TokKind::Punct(p)) if matches!(p, '+' | '-' | '*' | '/' | '%')
            ) && punct(i + 2, '=');
            let assigned = (punct(i + 1, '=') && !punct(i + 2, '=')) || op_assign;
            let field_write =
                punct(i.wrapping_sub(1), '.') && assigned && rule.fields.iter().any(|f| f == word);
            let method_call = punct(i + 1, '(')
                && ident(i.wrapping_sub(1)) != Some("fn")
                && rule.methods.iter().any(|m| m == word);
            let path_call = punct(i + 1, '(')
                && punct(i.wrapping_sub(1), ':')
                && punct(i.wrapping_sub(2), ':')
                && rule
                    .path_calls
                    .iter()
                    .any(|(t, m)| m == word && ident(i.wrapping_sub(3)) == Some(t));
            if field_write || method_call || path_call {
                out.push(finding(
                    ctx,
                    Lint::SingleWriter,
                    line,
                    format!(
                        "`{word}` is owned by {} (single-writer rule `{}`): route this \
                         mutation through the owning module",
                        rule.writers.join(", "),
                        rule.name
                    ),
                ));
            }
        }

        // L8 concurrency-readiness: the deterministic core stays free of
        // shared-state primitives so replay never depends on thread
        // interleaving.
        if lib && CONCURRENCY_CLEAN_CRATES.contains(&ctx.crate_name) {
            if matches!(word, "Mutex" | "RwLock" | "Condvar" | "Barrier" | "mpsc") {
                out.push(finding(
                    ctx,
                    Lint::Concurrency,
                    line,
                    format!(
                        "{word} in deterministic layer `{}`: shared-state concurrency is \
                         confined to the ingestion edge (par/bench/obs/taccd) — see DESIGN.md",
                        ctx.crate_name
                    ),
                ));
            }
            if word == "thread"
                && punct(i + 1, ':')
                && punct(i + 2, ':')
                && matches!(ident(i + 3), Some("spawn") | Some("scope"))
            {
                out.push(finding(
                    ctx,
                    Lint::Concurrency,
                    line,
                    format!(
                        "thread::{} in deterministic layer `{}`: fork–join parallelism must \
                         go through tacc_par at the harness edge",
                        ident(i + 3).unwrap_or_default(),
                        ctx.crate_name
                    ),
                ));
            }
        }

        // L6 metric-naming.
        if lib && matches!(word, "counter" | "gauge" | "histogram") && punct(i + 1, '(') {
            if let Some(name) = string(i + 2) {
                if !valid_metric_name(name) {
                    out.push(finding(
                        ctx,
                        Lint::MetricName,
                        line,
                        format!(
                            "metric name \"{name}\" does not match tacc_<layer>_<name> \
                             (lowercase, layer one of the workspace crates)"
                        ),
                    ));
                }
            }
        }

        // L6 metric-naming, declaration form: `const <NAME>_METRIC: &str
        // = "..."`. Layers that register through shared consts (e.g. core
        // registering obs-owned names) carry no literal at the call site,
        // so the declaration is the lintable surface.
        if lib
            && word == "const"
            && ident(i + 1).is_some_and(|n| n.ends_with("_METRIC"))
            && punct(i + 2, ':')
            && punct(i + 3, '&')
            && ident(i + 4) == Some("str")
            && punct(i + 5, '=')
        {
            if let Some(name) = string(i + 6) {
                if !valid_metric_name(name) {
                    out.push(finding(
                        ctx,
                        Lint::MetricName,
                        line,
                        format!(
                            "metric const declares \"{name}\", which does not match \
                             tacc_<layer>_<name> (lowercase, layer one of the workspace crates)"
                        ),
                    ));
                }
            }
        }
    }
}

/// L9: bare wildcard `_` arms in matches whose patterns mention a
/// lifecycle enum. The walk is heuristic (token-level, no real parse):
/// the scrutinee ends at the first `{` outside parens/brackets, arms
/// split on `,` / block-`}` at brace depth 1, and only the tokens before
/// each `=>` (minus any `if` guard) count as the pattern. A pattern that
/// is exactly `_` in a lifecycle-typed match is a finding; `(_, _)` or
/// `Some(_)` are not bare and stay legal.
fn lint_match_wildcards(ctx: &ScanCtx<'_>, toks: &[&Token], out: &mut Vec<Finding>) {
    let mut i = 0;
    while i < toks.len() {
        if !matches!(&toks[i].kind, TokKind::Ident(w) if w == "match") {
            i += 1;
            continue;
        }
        // Scrutinee: up to the body `{` at paren/bracket depth 0.
        let mut pd = 0i32;
        let mut j = i + 1;
        let mut body = None;
        while j < toks.len() {
            match &toks[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => pd += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => pd -= 1,
                TokKind::Punct('{') if pd == 0 => {
                    body = Some(j);
                    break;
                }
                TokKind::Punct(';') if pd == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body else {
            i += 1;
            continue;
        };

        let mut depth = 1i32;
        let mut pd = 0i32;
        let mut k = open + 1;
        let mut in_pattern = true;
        let mut in_guard = false;
        let mut pattern: Vec<usize> = Vec::new();
        let mut typed = false;
        let mut wildcard_lines: Vec<u32> = Vec::new();
        while k < toks.len() && depth > 0 {
            match &toks[k].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => pd += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => pd -= 1,
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 1 && !in_pattern {
                        // Block-bodied arm closed: next arm begins.
                        in_pattern = true;
                        in_guard = false;
                        pattern.clear();
                        k += 1;
                        continue;
                    }
                }
                TokKind::Punct(',') if depth == 1 && pd == 0 => {
                    in_pattern = true;
                    in_guard = false;
                    pattern.clear();
                    k += 1;
                    continue;
                }
                TokKind::Punct('=')
                    if depth == 1
                        && pd == 0
                        && in_pattern
                        && matches!(
                            toks.get(k + 1).map(|t| &t.kind),
                            Some(TokKind::Punct('>'))
                        ) =>
                {
                    typed |= pattern.iter().any(|&p| {
                        matches!(&toks[p].kind,
                                 TokKind::Ident(w) if LIFECYCLE_ENUMS.contains(&w.as_str()))
                    });
                    if pattern.len() == 1 {
                        if let TokKind::Ident(w) = &toks[pattern[0]].kind {
                            if w == "_" {
                                wildcard_lines.push(toks[pattern[0]].line);
                            }
                        }
                    }
                    in_pattern = false;
                    pattern.clear();
                    k += 2;
                    continue;
                }
                TokKind::Ident(w) if in_pattern && depth == 1 && pd == 0 && w == "if" => {
                    in_guard = true;
                }
                _ => {}
            }
            if in_pattern && !in_guard {
                pattern.push(k);
            }
            k += 1;
        }
        if typed {
            for line in wildcard_lines {
                out.push(finding(
                    ctx,
                    Lint::MatchWildcard,
                    line,
                    "wildcard `_` arm in a match over a lifecycle enum: stay exhaustive \
                     against TRANSITION_MATRIX — name the remaining states"
                        .to_owned(),
                ));
            }
        }
        i += 1;
    }
}

/// L8 (second form): a lock guard acquired before a fork–join entry at
/// the same or shallower brace depth is still held when the closure
/// fans out — a deadlock/serialization hazard. Applies everywhere but
/// the pool itself (whose internals are the one sanctioned home for
/// locks around `thread::scope`).
fn lint_lock_across_fork(ctx: &ScanCtx<'_>, syms: &FileSymbols, out: &mut Vec<Finding>) {
    if ctx.crate_name == "par" {
        return;
    }
    for f in syms.fns.iter().filter(|f| !f.is_test) {
        for fork in &f.forks {
            if f.locks
                .iter()
                .any(|l| l.line < fork.line && l.depth <= fork.depth)
            {
                out.push(finding(
                    ctx,
                    Lint::Concurrency,
                    fork.line,
                    format!(
                        "lock guard acquired earlier in `{}` may still be held across this \
                         fork–join boundary — scope the guard to end before fanning out",
                        f.name
                    ),
                ));
            }
        }
    }
}

/// `tacc_<layer>_<name>`: lowercase snake case, known layer, non-empty
/// trailing name.
pub fn valid_metric_name(name: &str) -> bool {
    if !name
        .bytes()
        .all(|b| b == b'_' || b.is_ascii_lowercase() || b.is_ascii_digit())
    {
        return false;
    }
    let mut segments = name.split('_');
    if segments.next() != Some("tacc") {
        return false;
    }
    let Some(layer) = segments.next() else {
        return false;
    };
    if !METRIC_LAYERS.contains(&layer) {
        return false;
    }
    segments.clone().count() >= 1 && segments.all(|s| !s.is_empty())
}

/// Line ranges (inclusive) covered by `#[cfg(test)]` or `#[test]` items.
pub(crate) fn test_ranges(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(is_punct(toks, i, '#') && is_punct(toks, i + 1, '[')) {
            i += 1;
            continue;
        }
        let close = match matching_bracket(toks, i + 1) {
            Some(c) => c,
            None => break,
        };
        if !is_test_attr(&toks[i + 2..close]) {
            i = close + 1;
            continue;
        }
        let start_line = toks[i].line;
        // Skip any further attributes on the same item.
        let mut k = close + 1;
        while is_punct(toks, k, '#') && is_punct(toks, k + 1, '[') {
            match matching_bracket(toks, k + 1) {
                Some(c) => k = c + 1,
                None => return ranges,
            }
        }
        // The item ends at the matching `}` of its first block, or at the
        // first top-level `;` (e.g. `#[cfg(test)] use …;`).
        let mut depth = 0usize;
        let mut end_line = start_line;
        while k < toks.len() {
            match toks[k].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end_line = toks[k].line;
                        break;
                    }
                }
                TokKind::Punct(';') if depth == 0 => {
                    end_line = toks[k].line;
                    break;
                }
                _ => {}
            }
            end_line = toks[k].line;
            k += 1;
        }
        ranges.push((start_line, end_line));
        i = k + 1;
    }
    ranges
}

fn is_punct(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
}

/// `test` or `cfg(test)` as the exact attribute body.
fn is_test_attr(body: &[Token]) -> bool {
    let kinds: Vec<&TokKind> = body.iter().map(|t| &t.kind).collect();
    match kinds.as_slice() {
        [TokKind::Ident(t)] => t == "test",
        [TokKind::Ident(cfg), TokKind::Punct('('), TokKind::Ident(t), TokKind::Punct(')')] => {
            cfg == "cfg" && t == "test"
        }
        _ => false,
    }
}

/// Index of the `]` matching the `[` at `open`.
fn matching_bracket(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parses every comment that *is* a `tacc-lint:` directive (the marker
/// must open the comment); malformed ones become `allow` findings
/// immediately.
fn parse_allows(
    rel_path: &str,
    comments: &[Comment],
    findings: &mut Vec<Finding>,
) -> Vec<AllowDirective> {
    let mut allows = Vec::new();
    for comment in comments {
        // A directive is the whole comment: `// tacc-lint: allow(...)`.
        // Mid-sentence mentions (docs quoting the grammar) don't count.
        let trimmed = comment
            .text
            .trim_start_matches(['/', '*', '!'])
            .trim_start();
        let Some(rest) = trimmed.strip_prefix("tacc-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        match parse_allow_body(rest) {
            Ok((lint, reason)) => allows.push(AllowDirective {
                line: comment.line,
                lint,
                reason,
                used: false,
            }),
            Err(why) => findings.push(Finding {
                lint: Lint::Allow.name(),
                file: rel_path.to_owned(),
                line: comment.line,
                message: format!("malformed suppression: {why}"),
            }),
        }
    }
    allows
}

/// Grammar: `allow(<lint>, reason = "<non-empty>")`.
fn parse_allow_body(body: &str) -> Result<(Lint, String), String> {
    let Some(args) = body.strip_prefix("allow(") else {
        return Err("expected `allow(<lint>, reason = \"...\")`".to_owned());
    };
    let Some((name, rest)) = args.split_once(',') else {
        return Err(
            "missing `, reason = \"...\"` — every suppression must be explained".to_owned(),
        );
    };
    let name = name.trim();
    let Some(lint) = Lint::suppressible_from_name(name) else {
        return Err(format!("unknown lint `{name}`"));
    };
    let rest = rest.trim_start();
    let Some(q) = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('"'))
    else {
        return Err("expected `reason = \"...\"`".to_owned());
    };
    let Some(end) = q.rfind('"') else {
        return Err("unterminated reason string".to_owned());
    };
    let reason = &q[..end];
    if reason.trim().is_empty() {
        return Err("empty reason — every suppression must be explained".to_owned());
    }
    if !q[end + 1..].trim_start().starts_with(')') {
        return Err("expected closing `)`".to_owned());
    }
    Ok((lint, reason.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    static EMPTY_OWNERS: OwnersConfig = OwnersConfig {
        roots: Vec::new(),
        owners: Vec::new(),
    };

    fn ctx<'a>(crate_name: &'a str, kind: FileKind) -> ScanCtx<'a> {
        ScanCtx {
            crate_name,
            kind,
            rel_path: "crates/x/src/lib.rs",
            dep_allowed: &crate::manifest::edge_allowed,
            owners: &EMPTY_OWNERS,
        }
    }

    fn owned_ctx<'a>(crate_name: &'a str, owners: &'a OwnersConfig) -> ScanCtx<'a> {
        ScanCtx {
            crate_name,
            kind: FileKind::Lib,
            rel_path: "crates/x/src/lib.rs",
            dep_allowed: &crate::manifest::edge_allowed,
            owners,
        }
    }

    fn lints_of(scan: &FileScan) -> Vec<&str> {
        scan.findings.iter().map(|f| f.lint).collect()
    }

    #[test]
    fn l1_hash_iter_flags_sim_path_crates_only() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\n";
        let in_core = scan_source(&ctx("core", FileKind::Lib), src);
        assert_eq!(lints_of(&in_core), vec!["hash-iter", "hash-iter"]);
        assert_eq!(in_core.findings[0].line, 1);
        assert_eq!(in_core.findings[1].line, 2);
        let in_bench = scan_source(&ctx("bench", FileKind::Lib), src);
        assert!(in_bench.findings.is_empty());
    }

    #[test]
    fn l2_wall_clock_flags_instant_now_not_the_import() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        let scan = scan_source(&ctx("sched", FileKind::Lib), src);
        assert_eq!(lints_of(&scan), vec!["wall-clock"]);
        assert_eq!(scan.findings[0].line, 2);
        // The exempt fork–join pool runs clean.
        assert!(scan_source(&ctx("par", FileKind::Lib), src)
            .findings
            .is_empty());
        // The bench harness is no longer blanket-exempt: its wall-clock
        // reads must carry per-site allow annotations.
        assert_eq!(
            lints_of(&scan_source(&ctx("bench", FileKind::Lib), src)),
            vec!["wall-clock"]
        );
    }

    #[test]
    fn l2_allow_comment_suppresses_with_reason() {
        let src = "// tacc-lint: allow(wall-clock, reason = \"measurement-only site\")\n\
                   let t = Instant::now();\n";
        let scan = scan_source(&ctx("sched", FileKind::Lib), src);
        assert!(scan.findings.is_empty());
        assert_eq!(scan.suppressed.len(), 1);
        assert_eq!(scan.suppressed[0].reason, "measurement-only site");
    }

    #[test]
    fn l3_ambient_rng_flags_thread_rng_and_rand_random() {
        let src = "let a = thread_rng().gen::<u8>();\nlet b: f64 = rand::random();\n";
        let scan = scan_source(&ctx("workload", FileKind::Lib), src);
        assert_eq!(lints_of(&scan), vec!["ambient-rng", "ambient-rng"]);
        // Bins are covered too.
        let scan = scan_source(&ctx("bench", FileKind::Bin), src);
        assert_eq!(scan.findings.len(), 2);
    }

    #[test]
    fn l4_layer_dag_flags_upward_source_references() {
        let src = "use tacc_tcloud::Client;\n";
        let scan = scan_source(&ctx("core", FileKind::Lib), src);
        assert_eq!(lints_of(&scan), vec!["layer-dag"]);
        // Downward edges are fine.
        let ok = scan_source(&ctx("core", FileKind::Lib), "use tacc_sched::Scheduler;\n");
        assert!(ok.findings.is_empty());
    }

    #[test]
    fn l5_panic_surface_counts_sites_not_lookalikes() {
        let src = "fn f(o: Option<u8>) -> u8 {\n\
                   let a = o.unwrap();\n\
                   let b = o.expect(\"msg\");\n\
                   let c = o.unwrap_or_else(|| 0);\n\
                   if a == 0 { panic!(\"zero\") }\n\
                   todo!()\n\
                   }\n";
        let scan = scan_source(&ctx("metrics", FileKind::Lib), src);
        assert!(
            scan.findings.is_empty(),
            "panic sites are budgeted, not hard findings"
        );
        assert_eq!(scan.panic_lines, vec![2, 3, 5, 6]);
        // Bins are exempt.
        assert!(scan_source(&ctx("bench", FileKind::Bin), src)
            .panic_lines
            .is_empty());
    }

    #[test]
    fn l6_metric_name_validates_registration_literals() {
        let good = "let c = registry.counter(\"tacc_sched_rounds_total\", &[]);\n";
        assert!(scan_source(&ctx("sched", FileKind::Lib), good)
            .findings
            .is_empty());
        let bad = "let c = registry.counter(\"sched_rounds\", &[]);\n\
                   let g = registry.gauge(\"tacc_Sched_depth\", &[]);\n\
                   let h = registry.histogram(\"tacc_nosuchlayer_x\", &[]);\n";
        let scan = scan_source(&ctx("sched", FileKind::Lib), bad);
        assert_eq!(
            lints_of(&scan),
            vec!["metric-name", "metric-name", "metric-name"]
        );
    }

    #[test]
    fn l6_metric_name_validates_const_declarations() {
        let good = "pub const GOODPUT_RATIO_METRIC: &str = \"tacc_obs_goodput_ratio\";\n\
                    pub const NOT_A_METRIC_NAME: &str = \"free-form text\";\n";
        assert!(scan_source(&ctx("obs", FileKind::Lib), good)
            .findings
            .is_empty());
        let bad = "pub const GOODPUT_METRIC: &str = \"tacc_obs_BadName\";\n\
                   const DROPPED_METRIC: &str = \"obs_dropped_total\";\n";
        let scan = scan_source(&ctx("obs", FileKind::Lib), bad);
        assert_eq!(lints_of(&scan), vec!["metric-name", "metric-name"]);
        assert_eq!(scan.findings[0].line, 1);
        assert!(scan.findings[0].message.contains("metric const"));
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "fn lib() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   use std::collections::HashMap;\n\
                   #[test]\n\
                   fn t() { let x = Instant::now(); x.unwrap(); }\n\
                   }\n";
        let scan = scan_source(&ctx("core", FileKind::Lib), src);
        assert!(scan.findings.is_empty());
        assert!(scan.panic_lines.is_empty());
    }

    #[test]
    fn test_attr_on_bare_fn_is_exempt() {
        let src = "#[test]\nfn t() { let m: HashMap<u8, u8> = HashMap::new(); }\n\
                   fn lib() { let m: HashMap<u8, u8> = HashMap::new(); }\n";
        let scan = scan_source(&ctx("core", FileKind::Lib), src);
        assert_eq!(scan.findings.len(), 2); // only the two sites in `lib`
        assert!(scan.findings.iter().all(|f| f.line == 3));
    }

    #[test]
    fn malformed_and_stale_allows_are_findings() {
        let src = "// tacc-lint: allow(wall-clock)\n\
                   // tacc-lint: allow(no-such-lint, reason = \"x\")\n\
                   // tacc-lint: allow(hash-iter, reason = \"nothing here\")\n\
                   fn f() {}\n";
        let scan = scan_source(&ctx("core", FileKind::Lib), src);
        assert_eq!(lints_of(&scan), vec!["allow", "allow", "allow"]);
        assert!(scan.findings[0].message.contains("reason"));
        assert!(scan.findings[1].message.contains("unknown lint"));
        assert!(scan.findings[2].message.contains("stale"));
    }

    fn job_state_owners() -> OwnersConfig {
        crate::owners::parse(
            "[[owner]]\n\
             name = \"job-state\"\n\
             fields = [\"state\"]\n\
             methods = [\"apply_event\"]\n\
             path_calls = [\"Counter::new\"]\n\
             writers = [\"crates/core/src/lifecycle.rs\"]\n",
        )
        .expect("owners fixture")
    }

    #[test]
    fn l7_single_writer_flags_rogue_field_writes_and_calls() {
        let owners = job_state_owners();
        let src = "fn f(job: &mut Job) {\n\
                   job.state = JobState::Running;\n\
                   job.state += 1;\n\
                   job.apply_event(ev);\n\
                   let c = Counter::new();\n\
                   }\n";
        let scan = scan_source(&owned_ctx("sched", &owners), src);
        let sw: Vec<u32> = scan
            .findings
            .iter()
            .filter(|f| f.lint == "single-writer")
            .map(|f| f.line)
            .collect();
        assert_eq!(sw, vec![2, 3, 4, 5]);
    }

    #[test]
    fn l7_single_writer_skips_reads_definitions_and_the_owner() {
        let owners = job_state_owners();
        let src = "fn f(job: &Job) {\n\
                   if job.state == JobState::Running {}\n\
                   let s = job.state;\n\
                   fn apply_event(x: u8) {}\n\
                   }\n";
        let scan = scan_source(&owned_ctx("sched", &owners), src);
        assert!(
            scan.findings.iter().all(|f| f.lint != "single-writer"),
            "reads and fn definitions are not write sites: {:?}",
            scan.findings
        );
        // The owning file itself may write.
        let owner_ctx = ScanCtx {
            crate_name: "core",
            kind: FileKind::Lib,
            rel_path: "crates/core/src/lifecycle.rs",
            dep_allowed: &crate::manifest::edge_allowed,
            owners: &owners,
        };
        let write = "fn g(job: &mut Job) { job.state = JobState::Queued; }\n";
        assert!(scan_source(&owner_ctx, write).findings.is_empty());
    }

    #[test]
    fn l8_concurrency_flags_primitives_in_deterministic_layers_only() {
        let src = "use std::sync::{Mutex, RwLock};\n\
                   fn f() { let (tx, rx) = mpsc::channel(); }\n\
                   fn g() { thread::spawn(|| {}); }\n";
        let scan = scan_source(&ctx("sched", FileKind::Lib), src);
        let conc: Vec<u32> = scan
            .findings
            .iter()
            .filter(|f| f.lint == "concurrency")
            .map(|f| f.line)
            .collect();
        assert_eq!(conc, vec![1, 1, 2, 3]);
        // The harness, obs, and service edges stay free to use them.
        assert!(scan_source(&ctx("bench", FileKind::Lib), src)
            .findings
            .is_empty());
        assert!(scan_source(&ctx("obs", FileKind::Lib), src)
            .findings
            .is_empty());
        assert!(scan_source(&ctx("taccd", FileKind::Lib), src)
            .findings
            .is_empty());
    }

    #[test]
    fn l8_lock_across_fork_join_is_flagged_everywhere_but_par() {
        let src = "fn f(m: &M, v: V) {\n\
                   let guard = m.lock();\n\
                   let out = par_map(v, |x| x);\n\
                   }\n\
                   fn ok(m: &M, v: V) {\n\
                   { let g = m.lock(); }\n\
                   let out = par_map(v, |x| x);\n\
                   }\n";
        let scan = scan_source(&ctx("bench", FileKind::Lib), src);
        let conc: Vec<u32> = scan
            .findings
            .iter()
            .filter(|f| f.lint == "concurrency")
            .map(|f| f.line)
            .collect();
        assert_eq!(conc, vec![3], "only the held-guard fork is flagged");
        assert!(scan_source(&ctx("par", FileKind::Lib), src)
            .findings
            .is_empty());
    }

    #[test]
    fn l9_match_wildcard_flags_bare_wildcards_in_lifecycle_matches() {
        let src = "fn f(s: JobState) -> u8 {\n\
                   match s {\n\
                   JobState::Running => 1,\n\
                   _ => 0,\n\
                   }\n\
                   }\n";
        let scan = scan_source(&ctx("core", FileKind::Lib), src);
        assert_eq!(
            scan.findings
                .iter()
                .filter(|f| f.lint == "match-wildcard")
                .map(|f| f.line)
                .collect::<Vec<_>>(),
            vec![4]
        );
    }

    #[test]
    fn l9_match_wildcard_ignores_untyped_matches_and_shaped_wildcards() {
        let src = "fn f(d: Decision, s: JobState) -> u8 {\n\
                   match d {\n\
                   Decision::Place => 1,\n\
                   _ => 0,\n\
                   }\n\
                   match s {\n\
                   JobState::Running | JobState::Queued => 1,\n\
                   JobState::Submitted => Foo { a: 2 }.a,\n\
                   other => by_name(other),\n\
                   }\n\
                   match (s, d) {\n\
                   (JobState::Running, _) => 1,\n\
                   (_, Decision::Skip) if cond() => 2,\n\
                   (_, _) => 0,\n\
                   }\n\
                   }\n";
        let scan = scan_source(&ctx("core", FileKind::Lib), src);
        assert!(
            scan.findings.iter().all(|f| f.lint != "match-wildcard"),
            "unexpected: {:?}",
            scan.findings
        );
    }

    #[test]
    fn l9_allow_comment_suppresses_with_reason() {
        let src = "fn f(s: JobState) -> u8 {\n\
                   match s {\n\
                   JobState::Running => 1,\n\
                   // tacc-lint: allow(match-wildcard, reason = \"projection only\")\n\
                   _ => 0,\n\
                   }\n\
                   }\n";
        let scan = scan_source(&ctx("core", FileKind::Lib), src);
        assert!(scan.findings.is_empty());
        assert_eq!(scan.suppressed.len(), 1);
    }

    #[test]
    fn metric_name_shape() {
        assert!(valid_metric_name("tacc_sched_rounds_total"));
        assert!(valid_metric_name("tacc_core_queue_delay_seconds"));
        assert!(valid_metric_name("tacc_taccd_journal_fsyncs_total"));
        assert!(!valid_metric_name("tacc_sched"));
        assert!(!valid_metric_name("sched_rounds"));
        assert!(!valid_metric_name("tacc_Sched_rounds"));
        assert!(!valid_metric_name("tacc_sched__total")); // empty segment
        assert!(!valid_metric_name("tacc_unknown_rounds"));
    }
}
