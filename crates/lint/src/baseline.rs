//! The committed panic-surface baseline (`lint-baseline.json`).
//!
//! The L5 lint does not demand zero `unwrap`/`expect`/`panic!` sites —
//! the workspace asserts internal invariants on purpose — it demands the
//! count *never grows*. Each library file's current site count is
//! committed here; a scan fails on any file whose count exceeds its
//! budget (new files get budget zero). Shrinking is rewarded: the scan
//! reports files under budget so `--bless-baseline` can ratchet down.
//!
//! The format is a two-level JSON object, rendered byte-stably with
//! sorted keys:
//!
//! ```json
//! {
//!   "panic-surface": {
//!     "crates/core/src/platform.rs": 7
//!   }
//! }
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::render::json_str;

/// Per-file panic-site budgets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// file → allowed panic-surface site count.
    pub panic_surface: BTreeMap<String, u64>,
}

/// Renders a baseline byte-stably (sorted keys, trailing newline).
pub fn render(counts: &BTreeMap<String, u64>) -> String {
    let mut out = String::from("{\n  \"panic-surface\": {");
    let mut first = true;
    for (file, count) in counts {
        if *count == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    {}: {count}", json_str(file));
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

/// Parses a baseline document. Strict about shape, lenient about
/// whitespace; errors carry enough context to fix the file by hand.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let mut baseline = Baseline::default();
    p.expect(b'{')?;
    if p.peek_is(b'}') {
        p.expect(b'}')?;
        return Ok(baseline);
    }
    loop {
        let section = p.string()?;
        p.expect(b':')?;
        let table = p.count_table()?;
        if section == "panic-surface" {
            baseline.panic_surface = table;
        } else {
            return Err(format!("unknown baseline section \"{section}\""));
        }
        if !p.peek_is(b',') {
            break;
        }
        p.expect(b',')?;
    }
    p.expect(b'}')?;
    Ok(baseline)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek_is(&mut self, c: u8) -> bool {
        self.skip_ws();
        self.bytes.get(self.pos) == Some(&c)
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {} of lint-baseline.json",
                c as char, self.pos
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let escaped = self.bytes.get(self.pos + 1).copied().unwrap_or(b'"');
                    out.push(match escaped {
                        b'n' => '\n',
                        b't' => '\t',
                        other => other as char,
                    });
                    self.pos += 2;
                }
                other => {
                    out.push(other as char);
                    self.pos += 1;
                }
            }
        }
        Err("unterminated string in lint-baseline.json".to_owned())
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a count at byte {start}"));
        }
        let mut value: u64 = 0;
        for &b in &self.bytes[start..self.pos] {
            value = value.saturating_mul(10).saturating_add(u64::from(b - b'0'));
        }
        Ok(value)
    }

    fn count_table(&mut self) -> Result<BTreeMap<String, u64>, String> {
        let mut table = BTreeMap::new();
        self.expect(b'{')?;
        if self.peek_is(b'}') {
            self.expect(b'}')?;
            return Ok(table);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.number()?;
            table.insert(key, value);
            if !self.peek_is(b',') {
                break;
            }
            self.expect(b',')?;
        }
        self.expect(b'}')?;
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut counts = BTreeMap::new();
        counts.insert("crates/core/src/platform.rs".to_owned(), 7);
        counts.insert("crates/par/src/lib.rs".to_owned(), 6);
        counts.insert("crates/zero/src/lib.rs".to_owned(), 0); // dropped
        let text = render(&counts);
        let parsed = parse(&text).expect("round trip");
        assert_eq!(parsed.panic_surface.len(), 2);
        assert_eq!(
            parsed.panic_surface.get("crates/core/src/platform.rs"),
            Some(&7)
        );
        // Byte stability.
        assert_eq!(text, render(&counts));
    }

    #[test]
    fn empty_baseline() {
        let empty = parse("{}").expect("empty object");
        assert!(empty.panic_surface.is_empty());
        let rendered = render(&BTreeMap::new());
        assert!(parse(&rendered).expect("parses").panic_surface.is_empty());
    }

    #[test]
    fn rejects_unknown_sections() {
        assert!(parse("{\"other\": {}}").is_err());
        assert!(parse("{\"panic-surface\": {\"f\": }}").is_err());
    }
}
