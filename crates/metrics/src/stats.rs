//! Summary statistics over f64 samples.

use serde::{Deserialize, Serialize};

/// Linear-interpolated percentile of a sample, `p` in `[0, 100]`.
///
/// Uses the standard "linear interpolation between closest ranks" definition
/// (the same definition NumPy's default uses), so `percentile(&v, 50.0)` is
/// the median.
///
/// # Panics
///
/// Panics if `samples` is empty or `p` is outside `[0, 100]`.
///
/// # Example
///
/// ```
/// let v = vec![1.0, 2.0, 3.0, 4.0];
/// assert_eq!(tacc_metrics::percentile(&v, 0.0), 1.0);
/// assert_eq!(tacc_metrics::percentile(&v, 100.0), 4.0);
/// assert_eq!(tacc_metrics::percentile(&v, 50.0), 2.5);
/// ```
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of [0,100]");
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    percentile_of_sorted(&sorted, p)
}

/// Percentile over an already ascending-sorted slice (no copy, no sort).
pub(crate) fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Immutable summary of a sample: count, mean, population std-dev, min/max
/// and the percentiles experiments report (p50, p90, p95, p99).
///
/// Built once from a sample with [`Summary::from_samples`]; all accessors are
/// O(1) afterwards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: usize,
    mean: f64,
    std_dev: f64,
    min: f64,
    max: f64,
    p50: f64,
    p90: f64,
    p95: f64,
    p99: f64,
}

impl Summary {
    /// Computes a summary of `samples`.
    ///
    /// Returns an all-zero summary when `samples` is empty, so callers
    /// reporting on an experiment that produced no events (e.g. zero
    /// preemptions) don't need a special case.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p90: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Summary {
            count: sorted.len(),
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: *sorted.last().expect("nonempty"),
            p50: percentile_of_sorted(&sorted, 50.0),
            p90: percentile_of_sorted(&sorted, 90.0),
            p95: percentile_of_sorted(&sorted, 95.0),
            p99: percentile_of_sorted(&sorted, 99.0),
        }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean (0 for an empty sample).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.p50
    }

    /// 90th percentile.
    pub fn p90(&self) -> f64 {
        self.p90
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.p95
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.p99
    }
}

/// Single-pass streaming mean/variance accumulator (Welford's algorithm).
///
/// Used on hot paths (per-event accounting inside the simulator) where
/// buffering every sample for a [`Summary`] would be wasteful.
///
/// # Example
///
/// ```
/// use tacc_metrics::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 6.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_endpoints() {
        let v = vec![5.0, 1.0, 3.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = vec![0.0, 10.0];
        assert!((percentile(&v, 25.0) - 2.5).abs() < 1e-12);
        assert!((percentile(&v, 75.0) - 7.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn summary_basic() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.p50(), 2.5);
    }

    #[test]
    fn summary_empty_is_zeroed() {
        let s = Summary::from_samples(&[]);
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.p99(), 0.0);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::from_samples(&[7.0]);
        assert_eq!(s.p50(), 7.0);
        assert_eq!(s.p99(), 7.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn online_matches_batch() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 + 2.0).collect();
        let mut o = OnlineStats::new();
        for &x in &data {
            o.push(x);
        }
        let s = Summary::from_samples(&data);
        assert!((o.mean() - s.mean()).abs() < 1e-9);
        assert!((o.std_dev() - s.std_dev()).abs() < 1e-9);
        assert_eq!(o.min().expect("nonempty"), s.min());
        assert_eq!(o.max().expect("nonempty"), s.max());
    }

    #[test]
    fn online_merge_matches_sequential() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = (50..130).map(|i| i as f64 * 1.5).collect();
        let mut left = OnlineStats::new();
        for &x in &a {
            left.push(x);
        }
        let mut right = OnlineStats::new();
        for &x in &b {
            right.push(x);
        }
        let mut seq = OnlineStats::new();
        for &x in a.iter().chain(b.iter()) {
            seq.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), seq.count());
        assert!((left.mean() - seq.mean()).abs() < 1e-9);
        assert!((left.variance() - seq.variance()).abs() < 1e-6);
    }

    #[test]
    fn online_merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(3.0);
        let empty = OnlineStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
        let mut e2 = OnlineStats::new();
        e2.merge(&a);
        assert_eq!(e2.count(), 1);
        assert_eq!(e2.mean(), 3.0);
    }
}
