//! # tacc-metrics
//!
//! Statistics substrate for the `tacc-rs` workspace.
//!
//! Every experiment in the reproduction reports one of a small set of
//! statistical artifacts: summary statistics over a sample (mean / median /
//! p95 job completion time), empirical CDFs and histograms (trace
//! characterization), time-weighted utilization series (cluster occupancy
//! over a simulated month), and fairness indices (per-group service under
//! contention). This crate implements those artifacts once so that the
//! scheduler, executor and platform crates all report numbers computed the
//! same way.
//!
//! ## Example
//!
//! ```
//! use tacc_metrics::{Summary, percentile};
//!
//! let jct: Vec<f64> = vec![10.0, 20.0, 30.0, 40.0, 100.0];
//! let s = Summary::from_samples(&jct);
//! assert_eq!(s.count(), 5);
//! assert!((s.mean() - 40.0).abs() < 1e-9);
//! assert_eq!(percentile(&jct, 50.0), 30.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod fairness;
mod stats;
mod table;
mod timeseries;

pub use cdf::{Cdf, Histogram, HistogramBucket};
pub use fairness::{jain_index, max_min_ratio};
pub use stats::{percentile, OnlineStats, Summary};
pub use table::{Cell, Table};
pub use timeseries::{StepSeries, UtilizationTracker};
