//! Plain-text table rendering for experiment harness output.
//!
//! Every `exp_*` binary prints its table/figure data through this renderer so
//! the output format is uniform and diffable across runs.

use std::fmt;

/// One table cell: either text or a number formatted with fixed precision.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A literal string cell.
    Text(String),
    /// A numeric cell rendered with the given number of decimal places.
    Num(f64, usize),
}

impl Cell {
    /// Renders the cell exactly as the text table prints it.
    pub fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Num(v, prec) => format!("{v:.prec$}"),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_owned())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Num(v, 2)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Num(v as f64, 0)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Num(v as f64, 0)
    }
}

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use tacc_metrics::Table;
/// let mut t = Table::new("T1: policy comparison", &["policy", "mean JCT"]);
/// t.row(vec!["fifo".into(), 412.7.into()]);
/// let out = t.to_string();
/// assert!(out.contains("policy"));
/// assert!(out.contains("412.70"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates a table with a title line and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row(&mut self, cells: Vec<Cell>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// The table title line.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers, in display order.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows, in insertion order.
    pub fn rows(&self) -> &[Vec<Cell>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::render).collect())
            .collect();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let head: Vec<String> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:<width$}", h, width = widths[i]))
            .collect();
        writeln!(f, "{}", head.join("  "))?;
        let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(rule_len))?;
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["aaaa".into(), Cell::Num(1.5, 1)]);
        t.row(vec!["b".into(), Cell::Num(22.26, 1)]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("1.5"));
        assert!(s.contains("22.3")); // rounded to 1 decimal
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn cell_conversions() {
        assert_eq!(Cell::from(3usize).render(), "3");
        assert_eq!(Cell::from(2.0f64).render(), "2.00");
        assert_eq!(Cell::from("x").render(), "x");
    }
}
