//! Empirical CDFs and histograms for trace characterization (experiment F1).

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution function over f64 samples.
///
/// Built once, then queried for `F(x)` or for quantiles; also renders the
/// `(x, F(x))` point series experiments plot.
///
/// # Example
///
/// ```
/// use tacc_metrics::Cdf;
/// let cdf = Cdf::from_samples(&[1.0, 2.0, 2.0, 4.0]);
/// assert_eq!(cdf.fraction_at_or_below(2.0), 0.75);
/// assert_eq!(cdf.quantile(1.0), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds the CDF from an unordered sample.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CDF input"));
        Cdf { sorted }
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x` (the empirical `F(x)`); 0 for an empty CDF.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Smallest sample value `v` such that at least `q` (in `[0,1]`) of the
    /// mass is `<= v`.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0,1]");
        crate::stats::percentile_of_sorted(&self.sorted, q * 100.0)
    }

    /// Evenly spaced `(value, cumulative_fraction)` points for plotting.
    ///
    /// Returns at most `points` entries, always ending at the maximum sample
    /// with fraction 1.0. Empty when the CDF is empty.
    pub fn plot_points(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        let step = (n.max(points) / points).max(1);
        let mut out = Vec::with_capacity(points + 1);
        let mut i = step - 1;
        while i < n {
            out.push((self.sorted[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if out.last().map(|&(_, f)| f < 1.0).unwrap_or(true) {
            out.push((self.sorted[n - 1], 1.0));
        }
        out
    }
}

/// One bucket of a [`Histogram`]: the half-open range `[lo, hi)` and its count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive lower bound of the bucket.
    pub lo: f64,
    /// Exclusive upper bound of the bucket.
    pub hi: f64,
    /// Number of samples that fell in `[lo, hi)`.
    pub count: u64,
}

/// A fixed-bucket histogram, either linear or logarithmic (powers of a base).
///
/// Logarithmic bucketing is what trace-characterization figures use for
/// heavy-tailed job durations (seconds → days on one axis).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `lo >= hi`.
    pub fn linear(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(lo < hi, "histogram range must be nonempty");
        let width = (hi - lo) / buckets as f64;
        let edges = (0..=buckets).map(|i| lo + width * i as f64).collect();
        Histogram {
            edges,
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Creates a histogram whose bucket edges are `lo * base^i`, covering
    /// `buckets` buckets starting at `lo > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`, `lo <= 0`, or `base <= 1`.
    pub fn logarithmic(lo: f64, base: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(lo > 0.0, "logarithmic histogram needs positive lower bound");
        assert!(base > 1.0, "logarithmic base must exceed 1");
        let edges = (0..=buckets).map(|i| lo * base.powi(i as i32)).collect();
        Histogram {
            edges,
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one sample. Samples below/above the range are counted in
    /// dedicated under/overflow tallies rather than dropped.
    pub fn record(&mut self, x: f64) {
        let first = self.edges[0];
        let last = *self.edges.last().expect("edges nonempty");
        if x < first {
            self.underflow += 1;
        } else if x >= last {
            self.overflow += 1;
        } else {
            // partition_point returns the first edge > x; bucket is that - 1.
            let idx = self.edges.partition_point(|&e| e <= x) - 1;
            self.counts[idx] += 1;
        }
    }

    /// Total samples recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Samples that fell below the first bucket.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples that fell at or above the last edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Iterates over the buckets in ascending order.
    pub fn buckets(&self) -> impl Iterator<Item = HistogramBucket> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &count)| HistogramBucket {
                lo: self.edges[i],
                hi: self.edges[i + 1],
                count,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_fraction_and_quantile() {
        let cdf = Cdf::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(cdf.fraction_at_or_below(0.0), 0.0);
        assert_eq!(cdf.fraction_at_or_below(3.0), 0.6);
        assert_eq!(cdf.fraction_at_or_below(10.0), 1.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 5.0);
        assert_eq!(cdf.quantile(0.5), 3.0);
    }

    #[test]
    fn cdf_empty() {
        let cdf = Cdf::from_samples(&[]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.0);
        assert!(cdf.plot_points(10).is_empty());
    }

    #[test]
    fn cdf_plot_points_end_at_one() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let pts = Cdf::from_samples(&samples).plot_points(20);
        assert!(pts.len() <= 21);
        let (x, f) = *pts.last().expect("nonempty");
        assert_eq!(x, 999.0);
        assert_eq!(f, 1.0);
        // Monotone in both coordinates.
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn linear_histogram_buckets() {
        let mut h = Histogram::linear(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 9.99, -1.0, 10.0, 55.0] {
            h.record(x);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        let counts: Vec<u64> = h.buckets().map(|b| b.count).collect();
        assert_eq!(counts, vec![2, 1, 0, 0, 1]);
    }

    #[test]
    fn log_histogram_spans_decades() {
        let mut h = Histogram::logarithmic(1.0, 10.0, 4); // [1,10),[10,100),[100,1k),[1k,10k)
        for x in [1.0, 5.0, 50.0, 500.0, 5000.0, 0.5] {
            h.record(x);
        }
        let counts: Vec<u64> = h.buckets().map(|b| b.count).collect();
        assert_eq!(counts, vec![2, 1, 1, 1]);
        assert_eq!(h.underflow(), 1);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn linear_histogram_rejects_bad_range() {
        let _ = Histogram::linear(5.0, 5.0, 3);
    }
}
