//! Time-weighted series for utilization accounting (experiments F2, F4, T1).

use serde::{Deserialize, Serialize};

/// A right-continuous step function of time: the value set at time `t`
/// holds until the next sample.
///
/// Used to record quantities like "GPUs busy" that change only at discrete
/// simulation events; the time-weighted mean over a window is then exact,
/// not an approximation from periodic sampling.
///
/// # Example
///
/// ```
/// use tacc_metrics::StepSeries;
/// let mut s = StepSeries::new();
/// s.set(0.0, 4.0);
/// s.set(10.0, 8.0);
/// // 4.0 for 10s then 8.0 for 10s => mean 6.0 over [0, 20).
/// assert!((s.time_weighted_mean(0.0, 20.0) - 6.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StepSeries {
    /// (time, value) change-points, strictly increasing in time.
    points: Vec<(f64, f64)>,
}

impl StepSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        StepSeries { points: Vec::new() }
    }

    /// Records that the value becomes `value` at time `t`.
    ///
    /// Setting the same time twice overwrites the previous value at that
    /// time; consecutive equal values are coalesced.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last recorded change-point.
    pub fn set(&mut self, t: f64, value: f64) {
        if let Some(&mut (last_t, ref mut last_v)) = self.points.last_mut() {
            assert!(
                t >= last_t,
                "StepSeries::set time {t} precedes last change-point {last_t}"
            );
            if t == last_t {
                *last_v = value;
                return;
            }
            if *last_v == value {
                return; // coalesce no-op changes
            }
        }
        self.points.push((t, value));
    }

    /// Number of retained change-points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no change-point has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The value in effect at time `t` (`None` before the first change-point).
    pub fn value_at(&self, t: f64) -> Option<f64> {
        let idx = self.points.partition_point(|&(pt, _)| pt <= t);
        if idx == 0 {
            None
        } else {
            Some(self.points[idx - 1].1)
        }
    }

    /// Exact time-weighted mean over the window `[from, to)`.
    ///
    /// Time before the first change-point contributes value 0.
    ///
    /// # Panics
    ///
    /// Panics if `from >= to`.
    pub fn time_weighted_mean(&self, from: f64, to: f64) -> f64 {
        assert!(from < to, "empty averaging window [{from}, {to})");
        let mut acc = 0.0;
        let mut cursor = from;
        let mut current = self.value_at(from).unwrap_or(0.0);
        let start = self.points.partition_point(|&(pt, _)| pt <= from);
        for &(pt, v) in &self.points[start..] {
            if pt >= to {
                break;
            }
            acc += current * (pt - cursor);
            cursor = pt;
            current = v;
        }
        acc += current * (to - cursor);
        acc / (to - from)
    }

    /// Samples the series at `n` evenly spaced instants across `[from, to]`
    /// (inclusive of both endpoints), for plotting.
    pub fn sample_points(&self, from: f64, to: f64, n: usize) -> Vec<(f64, f64)> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![(from, self.value_at(from).unwrap_or(0.0))];
        }
        let step = (to - from) / (n - 1) as f64;
        (0..n)
            .map(|i| {
                let t = from + step * i as f64;
                (t, self.value_at(t).unwrap_or(0.0))
            })
            .collect()
    }

    /// Iterates over the raw `(time, value)` change-points.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.points.iter().copied()
    }
}

/// Tracks utilization of a capacity-bounded resource pool over simulated time.
///
/// Feed it `acquire`/`release` deltas as scheduling events happen; read back
/// the busy-fraction series and window means. This is the object behind every
/// "cluster GPU utilization" number in the experiment suite.
///
/// # Example
///
/// ```
/// use tacc_metrics::UtilizationTracker;
/// let mut u = UtilizationTracker::new(10.0);
/// u.acquire(0.0, 5.0);
/// u.release(50.0, 5.0);
/// // Busy 5/10 for 50s then idle for 50s => 25% over [0, 100).
/// assert!((u.mean_utilization(0.0, 100.0) - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationTracker {
    capacity: f64,
    in_use: f64,
    series: StepSeries,
}

impl UtilizationTracker {
    /// Creates a tracker for a pool with the given total capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive.
    pub fn new(capacity: f64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        UtilizationTracker {
            capacity,
            in_use: 0.0,
            series: StepSeries::new(),
        }
    }

    /// Total capacity of the pool.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Amount currently in use.
    pub fn in_use(&self) -> f64 {
        self.in_use
    }

    /// Marks `amount` additional units busy at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if this would exceed capacity (beyond f64 rounding slack).
    pub fn acquire(&mut self, t: f64, amount: f64) {
        assert!(amount >= 0.0, "negative acquire");
        assert!(
            self.in_use + amount <= self.capacity + 1e-9,
            "acquire overflows capacity: {} + {} > {}",
            self.in_use,
            amount,
            self.capacity
        );
        self.in_use += amount;
        self.series.set(t, self.in_use);
    }

    /// Returns `amount` units to the pool at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if more is released than is in use (beyond rounding slack).
    pub fn release(&mut self, t: f64, amount: f64) {
        assert!(amount >= 0.0, "negative release");
        assert!(
            self.in_use - amount >= -1e-9,
            "release underflows: {} - {}",
            self.in_use,
            amount
        );
        self.in_use = (self.in_use - amount).max(0.0);
        self.series.set(t, self.in_use);
    }

    /// Mean busy fraction (0..=1) over `[from, to)`.
    pub fn mean_utilization(&self, from: f64, to: f64) -> f64 {
        self.series.time_weighted_mean(from, to) / self.capacity
    }

    /// The busy-fraction series sampled for plotting.
    pub fn utilization_points(&self, from: f64, to: f64, n: usize) -> Vec<(f64, f64)> {
        self.series
            .sample_points(from, to, n)
            .into_iter()
            .map(|(t, v)| (t, v / self.capacity))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_series_value_lookup() {
        let mut s = StepSeries::new();
        assert_eq!(s.value_at(5.0), None);
        s.set(1.0, 10.0);
        s.set(3.0, 20.0);
        assert_eq!(s.value_at(0.5), None);
        assert_eq!(s.value_at(1.0), Some(10.0));
        assert_eq!(s.value_at(2.9), Some(10.0));
        assert_eq!(s.value_at(3.0), Some(20.0));
        assert_eq!(s.value_at(99.0), Some(20.0));
    }

    #[test]
    fn step_series_coalesces_and_overwrites() {
        let mut s = StepSeries::new();
        s.set(0.0, 1.0);
        s.set(1.0, 1.0); // coalesced away
        assert_eq!(s.len(), 1);
        s.set(2.0, 5.0);
        s.set(2.0, 7.0); // overwrite at same instant
        assert_eq!(s.len(), 2);
        assert_eq!(s.value_at(2.0), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn step_series_rejects_time_travel() {
        let mut s = StepSeries::new();
        s.set(5.0, 1.0);
        s.set(4.0, 2.0);
    }

    #[test]
    fn time_weighted_mean_partial_window() {
        let mut s = StepSeries::new();
        s.set(0.0, 2.0);
        s.set(10.0, 4.0);
        s.set(20.0, 0.0);
        // Window [5, 15): 2.0 for 5s then 4.0 for 5s => 3.0.
        assert!((s.time_weighted_mean(5.0, 15.0) - 3.0).abs() < 1e-12);
        // Window entirely after final point.
        assert!((s.time_weighted_mean(30.0, 40.0) - 0.0).abs() < 1e-12);
        // Window before the first point counts as zero.
        let mut late = StepSeries::new();
        late.set(10.0, 6.0);
        assert!((late.time_weighted_mean(0.0, 20.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn tracker_accounts_busy_time() {
        let mut u = UtilizationTracker::new(8.0);
        u.acquire(0.0, 8.0);
        u.release(25.0, 4.0);
        u.release(75.0, 4.0);
        // 8 busy for 25s, 4 busy for 50s, 0 for 25s => (200+200)/8/100 = 0.5
        assert!((u.mean_utilization(0.0, 100.0) - 0.5).abs() < 1e-12);
        assert_eq!(u.in_use(), 0.0);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn tracker_rejects_overcommit() {
        let mut u = UtilizationTracker::new(2.0);
        u.acquire(0.0, 3.0);
    }

    #[test]
    fn tracker_plot_points_normalized() {
        let mut u = UtilizationTracker::new(4.0);
        u.acquire(0.0, 2.0);
        let pts = u.utilization_points(0.0, 10.0, 3);
        assert_eq!(pts.len(), 3);
        for &(_, f) in &pts {
            assert!((f - 0.5).abs() < 1e-12);
        }
    }
}
