//! Fairness indices for multi-tenant experiments (F3).

/// Jain's fairness index over per-tenant allocations.
///
/// Returns a value in `(0, 1]`: 1.0 when every tenant receives an equal
/// share, approaching `1/n` when a single tenant receives everything.
/// Returns 1.0 for an empty input or an all-zero allocation (a vacuously
/// fair outcome), so load sweeps that include an idle point don't divide
/// by zero.
///
/// # Example
///
/// ```
/// assert_eq!(tacc_metrics::jain_index(&[1.0, 1.0, 1.0]), 1.0);
/// let skewed = tacc_metrics::jain_index(&[10.0, 0.0, 0.0]);
/// assert!((skewed - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn jain_index(allocations: &[f64]) -> f64 {
    if allocations.is_empty() {
        return 1.0;
    }
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (allocations.len() as f64 * sum_sq)
}

/// Ratio of the smallest to the largest allocation (max-min fairness view).
///
/// 1.0 means perfectly equal; 0.0 means at least one tenant was starved.
/// Returns 1.0 for empty input and 0.0 if any allocation is negative-free
/// but the max is zero while others are positive is impossible, so the
/// only zero-max case is all-zero, which also reports 1.0.
///
/// # Panics
///
/// Panics if any allocation is negative.
pub fn max_min_ratio(allocations: &[f64]) -> f64 {
    assert!(
        allocations.iter().all(|&x| x >= 0.0),
        "allocations must be nonnegative"
    );
    if allocations.is_empty() {
        return 1.0;
    }
    let max = allocations
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    if max == 0.0 {
        return 1.0;
    }
    let min = allocations.iter().cloned().fold(f64::INFINITY, f64::min);
    min / max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_equal_is_one() {
        assert!((jain_index(&[5.0; 7]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_single_hog_is_one_over_n() {
        let idx = jain_index(&[0.0, 0.0, 0.0, 4.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_degenerate_inputs() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn jain_is_scale_invariant() {
        let a = jain_index(&[1.0, 2.0, 3.0]);
        let b = jain_index(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn max_min_basic() {
        assert_eq!(max_min_ratio(&[2.0, 4.0]), 0.5);
        assert_eq!(max_min_ratio(&[3.0, 3.0]), 1.0);
        assert_eq!(max_min_ratio(&[0.0, 5.0]), 0.0);
        assert_eq!(max_min_ratio(&[]), 1.0);
        assert_eq!(max_min_ratio(&[0.0, 0.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn max_min_rejects_negative() {
        max_min_ratio(&[-1.0, 2.0]);
    }
}
