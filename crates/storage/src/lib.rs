//! # tacc-storage
//!
//! The shared-storage substrate of the `tacc-rs` reproduction: the paper's
//! execution layer runs on a "reliable networked file system for shared
//! big data storage", and dataset staging out of that filesystem is a
//! first-order cost for data-heavy training jobs.
//!
//! Two pieces are modelled:
//!
//! * [`NodeCache`] — each node's local NVMe staging cache: datasets staged
//!   for an earlier job are reused by later jobs on the same node (LRU,
//!   capacity-bounded).
//! * [`SharedStore`] — the networked filesystem itself: per-client NIC
//!   bandwidth and an aggregate backend bandwidth shared by all concurrent
//!   readers, so staging slows down under fan-in (the classic NFS
//!   congestion the paper's operators deal with).
//!
//! The platform asks the store for a [`Staging`] estimate when a job
//! starts and reports completion so concurrent-reader accounting stays
//! correct. Experiment F8 regenerates the staging-latency table from this
//! model.
//!
//! ## Example
//!
//! ```
//! use tacc_cluster::NodeId;
//! use tacc_storage::{SharedStore, StorageConfig};
//!
//! let mut store = SharedStore::new(StorageConfig::default(), 4);
//! let nodes = [NodeId::from_index(0)];
//! // First job on node0 stages 20 GiB from the shared FS...
//! let first = store.begin_staging(&nodes, "imagenet", 20_480);
//! assert!(first.secs > 0.0);
//! store.end_staging(&first);
//! // ...a second job on the same node finds it in the local cache.
//! let second = store.begin_staging(&nodes, "imagenet", 20_480);
//! assert_eq!(second.secs, 0.0);
//! store.end_staging(&second);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use tacc_cluster::NodeId;

/// Configuration of the shared filesystem and the node-local caches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageConfig {
    /// Per-client read bandwidth in MiB/s (NIC / NFS client cap).
    pub per_client_mbps: f64,
    /// Aggregate backend bandwidth in MiB/s shared by all readers.
    pub aggregate_mbps: f64,
    /// Node-local staging cache capacity in MiB (0 disables caching).
    pub node_cache_mb: u64,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            // 25 GbE client ≈ 3 GiB/s; backend array ≈ 20 GiB/s aggregate.
            per_client_mbps: 3_000.0,
            aggregate_mbps: 20_000.0,
            node_cache_mb: 500_000, // 500 GB NVMe per node
        }
    }
}

/// The outcome of starting a staging operation: how long it takes and how
/// many concurrent-reader slots it holds (pass back to
/// [`SharedStore::end_staging`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Staging {
    /// Wall-clock staging time in seconds (0 when every node had the
    /// dataset cached).
    pub secs: f64,
    /// Reader slots this staging holds until `end_staging`.
    pub readers: u32,
    /// MiB actually moved out of the shared store.
    pub transferred_mb: u64,
}

/// One node's local LRU staging cache, keyed by dataset name.
#[derive(Debug, Clone, Default)]
pub struct NodeCache {
    capacity_mb: u64,
    used_mb: u64,
    /// dataset -> (size, last-use tick). Ordered map: LRU eviction
    /// iterates it, and iteration order must not depend on a hasher
    /// (the hash-iter lint).
    resident: BTreeMap<String, (u32, u64)>,
    tick: u64,
}

impl NodeCache {
    /// Creates a cache with the given capacity (0 disables it).
    pub fn new(capacity_mb: u64) -> Self {
        NodeCache {
            capacity_mb,
            used_mb: 0,
            resident: BTreeMap::new(),
            tick: 0,
        }
    }

    /// MiB currently resident.
    pub fn used_mb(&self) -> u64 {
        self.used_mb
    }

    /// True if `dataset` is resident (refreshes its LRU position).
    pub fn touch(&mut self, dataset: &str) -> bool {
        self.tick += 1;
        if let Some(entry) = self.resident.get_mut(dataset) {
            entry.1 = self.tick;
            true
        } else {
            false
        }
    }

    /// Inserts a freshly staged dataset, evicting LRU entries as needed.
    /// Oversized datasets stream through without displacing the cache.
    pub fn insert(&mut self, dataset: &str, size_mb: u32) {
        if u64::from(size_mb) > self.capacity_mb {
            return;
        }
        self.tick += 1;
        if self.resident.contains_key(dataset) {
            return;
        }
        while self.used_mb + u64::from(size_mb) > self.capacity_mb {
            let victim = self
                .resident
                .iter()
                .min_by_key(|(_, &(_, t))| t)
                .map(|(k, &(s, _))| (k.clone(), s))
                .expect("over-capacity cache is nonempty");
            self.resident.remove(&victim.0);
            self.used_mb -= u64::from(victim.1);
        }
        self.resident
            .insert(dataset.to_owned(), (size_mb, self.tick));
        self.used_mb += u64::from(size_mb);
    }
}

/// The networked filesystem shared by the whole cluster.
#[derive(Debug, Clone)]
pub struct SharedStore {
    config: StorageConfig,
    node_caches: Vec<NodeCache>,
    active_readers: u32,
    total_staged_mb: u64,
    total_stagings: u64,
    cache_hits: u64,
}

impl SharedStore {
    /// Creates the store for a cluster of `node_count` nodes.
    pub fn new(config: StorageConfig, node_count: usize) -> Self {
        SharedStore {
            node_caches: (0..node_count)
                .map(|_| NodeCache::new(config.node_cache_mb))
                .collect(),
            config,
            active_readers: 0,
            total_staged_mb: 0,
            total_stagings: 0,
            cache_hits: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> StorageConfig {
        self.config
    }

    /// Readers currently pulling from the backend.
    pub fn active_readers(&self) -> u32 {
        self.active_readers
    }

    /// Total MiB ever staged out of the backend.
    pub fn total_staged_mb(&self) -> u64 {
        self.total_staged_mb
    }

    /// Node-level dataset cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Per-reader effective bandwidth if `extra` new readers join now.
    fn effective_mbps(&self, extra: u32) -> f64 {
        let readers = f64::from(self.active_readers + extra).max(1.0);
        self.config
            .per_client_mbps
            .min(self.config.aggregate_mbps / readers)
    }

    /// Starts staging `dataset` (of `size_mb`) onto every distinct node of
    /// a placement. Nodes that already cache the dataset stage nothing.
    ///
    /// The returned [`Staging`] must be passed to
    /// [`SharedStore::end_staging`] when the transfer completes (the
    /// platform schedules that as an event), so reader accounting stays
    /// balanced.
    ///
    /// # Panics
    ///
    /// Panics if any node id is out of range for this store.
    pub fn begin_staging(&mut self, nodes: &[NodeId], dataset: &str, size_mb: u32) -> Staging {
        let mut distinct: Vec<NodeId> = nodes.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let mut misses: u32 = 0;
        for &node in &distinct {
            let cache = self
                .node_caches
                .get_mut(node.index())
                .unwrap_or_else(|| panic!("unknown node {node}"));
            if cache.touch(dataset) {
                self.cache_hits += 1;
            } else {
                cache.insert(dataset, size_mb);
                misses += 1;
            }
        }
        if misses == 0 || size_mb == 0 {
            return Staging {
                secs: 0.0,
                readers: 0,
                transferred_mb: 0,
            };
        }
        // All missing nodes pull concurrently; each sees the per-reader
        // effective bandwidth with the new readers included.
        let bw = self.effective_mbps(misses);
        let secs = f64::from(size_mb) / bw;
        self.active_readers += misses;
        self.total_staged_mb += u64::from(size_mb) * u64::from(misses);
        self.total_stagings += 1;
        Staging {
            secs,
            readers: misses,
            transferred_mb: u64::from(size_mb) * u64::from(misses),
        }
    }

    /// Releases the reader slots held by a staging.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if more readers are released than are
    /// active — always an accounting bug in the caller.
    pub fn end_staging(&mut self, staging: &Staging) {
        debug_assert!(
            staging.readers <= self.active_readers,
            "reader accounting underflow"
        );
        self.active_readers = self.active_readers.saturating_sub(staging.readers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SharedStore {
        SharedStore::new(StorageConfig::default(), 4)
    }

    fn nodes(ids: &[usize]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId::from_index(i)).collect()
    }

    #[test]
    fn cold_staging_takes_bandwidth_limited_time() {
        let mut s = store();
        let staging = s.begin_staging(&nodes(&[0]), "imagenet", 12_000);
        // One reader: per-client cap of 3000 MiB/s applies: 4 s.
        assert!((staging.secs - 4.0).abs() < 1e-9);
        assert_eq!(staging.readers, 1);
        assert_eq!(staging.transferred_mb, 12_000);
        assert_eq!(s.active_readers(), 1);
        s.end_staging(&staging);
        assert_eq!(s.active_readers(), 0);
    }

    #[test]
    fn node_cache_hit_is_free() {
        let mut s = store();
        let first = s.begin_staging(&nodes(&[0]), "coco", 20_000);
        s.end_staging(&first);
        let second = s.begin_staging(&nodes(&[0]), "coco", 20_000);
        assert_eq!(second.secs, 0.0);
        assert_eq!(second.readers, 0);
        assert_eq!(s.cache_hits(), 1);
        // A different node still has to stage.
        let other = s.begin_staging(&nodes(&[1]), "coco", 20_000);
        assert!(other.secs > 0.0);
        s.end_staging(&other);
    }

    #[test]
    fn fan_in_contention_slows_readers() {
        let mut s = store();
        // A gang staging onto 8 nodes saturates the 20 GiB/s backend:
        // effective per-reader bw = 20000/8 = 2500 < per-client 3000.
        let mut many = SharedStore::new(StorageConfig::default(), 8);
        let gang = many.begin_staging(&nodes(&[0, 1, 2, 3]), "librispeech", 28_000);
        // 4 readers: aggregate/4 = 5000 > 3000, so still client-capped.
        assert!((gang.secs - 28_000.0 / 3_000.0).abs() < 1e-9);
        many.end_staging(&gang);
        let wide: Vec<NodeId> = (0..8).map(NodeId::from_index).collect();
        let big = many.begin_staging(&wide, "other", 25_000);
        assert!((big.secs - 25_000.0 / 2_500.0).abs() < 1e-9);
        many.end_staging(&big);
        // Sequential readers see contention from still-active stagings.
        let a = s.begin_staging(&nodes(&[0]), "d1", 10_000);
        let b_nodes = nodes(&[1]);
        let b = s.begin_staging(&b_nodes, "d2", 10_000);
        assert!(b.secs >= a.secs - 1e-9);
        s.end_staging(&a);
        s.end_staging(&b);
    }

    #[test]
    fn duplicate_nodes_in_placement_are_deduped() {
        let mut s = store();
        let staging = s.begin_staging(&nodes(&[2, 2, 2]), "wikitext", 600);
        assert_eq!(staging.readers, 1);
        assert_eq!(staging.transferred_mb, 600);
        s.end_staging(&staging);
    }

    #[test]
    fn lru_eviction_in_node_cache() {
        let mut cache = NodeCache::new(30_000);
        cache.insert("a", 12_000);
        cache.insert("b", 12_000);
        assert!(cache.touch("a")); // refresh a: b becomes LRU
        cache.insert("c", 12_000); // evicts b
        assert!(cache.touch("a"));
        assert!(!cache.touch("b"));
        assert!(cache.touch("c"));
        assert!(cache.used_mb() <= 30_000);
    }

    #[test]
    fn oversized_dataset_streams_through_cache() {
        let mut cache = NodeCache::new(10_000);
        cache.insert("huge", 50_000);
        assert!(!cache.touch("huge"));
        assert_eq!(cache.used_mb(), 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let config = StorageConfig {
            node_cache_mb: 0,
            ..StorageConfig::default()
        };
        let mut s = SharedStore::new(config, 2);
        let first = s.begin_staging(&nodes(&[0]), "d", 1_000);
        s.end_staging(&first);
        let second = s.begin_staging(&nodes(&[0]), "d", 1_000);
        assert!(second.secs > 0.0, "nothing is ever cached");
        s.end_staging(&second);
    }

    #[test]
    fn contention_recovers_after_end_staging() {
        let config = StorageConfig {
            aggregate_mbps: 6_000.0,
            per_client_mbps: 3_000.0,
            node_cache_mb: 0, // force every read to the backend
        };
        let mut s = SharedStore::new(config, 4);
        // Three concurrent readers: each sees 6000/3 = 2000 MiB/s.
        let a = s.begin_staging(&nodes(&[0]), "a", 6_000);
        let b = s.begin_staging(&nodes(&[1]), "b", 6_000);
        let c = s.begin_staging(&nodes(&[2]), "c", 6_000);
        assert!((c.secs - 3.0).abs() < 1e-9);
        s.end_staging(&a);
        s.end_staging(&b);
        s.end_staging(&c);
        // Alone again: client cap applies (2 s).
        let d = s.begin_staging(&nodes(&[3]), "d", 6_000);
        assert!((d.secs - 2.0).abs() < 1e-9);
        s.end_staging(&d);
    }

    #[test]
    fn total_staged_accounts_per_node_copies() {
        let mut s = store();
        let gang = s.begin_staging(&nodes(&[0, 1, 2]), "coco", 1_000);
        assert_eq!(gang.transferred_mb, 3_000);
        assert_eq!(s.total_staged_mb(), 3_000);
        s.end_staging(&gang);
        // One node already has it; only two fresh copies move.
        let partial = s.begin_staging(&nodes(&[2, 3]), "coco", 1_000);
        assert_eq!(partial.readers, 1);
        assert_eq!(s.total_staged_mb(), 4_000);
        assert_eq!(s.cache_hits(), 1);
        s.end_staging(&partial);
    }

    #[test]
    fn empty_dataset_is_free() {
        let mut s = store();
        let staging = s.begin_staging(&nodes(&[0]), "none", 0);
        assert_eq!(staging.secs, 0.0);
        assert_eq!(staging.readers, 0);
        s.end_staging(&staging);
    }
}
