//! Reproducible random streams.

use rand::RngCore;

use crate::prng::DetRng;

/// A factory for independent, labelled random streams derived from one
/// master seed.
///
/// Experiments need several logically independent random sources (arrival
/// process, duration sampling, failure injection, …). Drawing them all from
/// one RNG makes results fragile: adding a single extra draw in one
/// subsystem perturbs every other subsystem. `SeedStream` derives a child
/// RNG per label, so subsystems stay independent and each is reproducible
/// in isolation.
///
/// The derivation is `DetRng(master_seed ⊕ fnv1a(label))`, which is stable
/// across platforms and Rust versions (no reliance on `std` hashers).
///
/// # Example
///
/// ```
/// use tacc_sim::SeedStream;
/// use rand::RngCore;
///
/// let seeds = SeedStream::new(42);
/// let mut a1 = seeds.stream("arrivals");
/// let mut a2 = SeedStream::new(42).stream("arrivals");
/// assert_eq!(a1.next_u64(), a2.next_u64()); // same label, same stream
/// let mut b = seeds.stream("failures");
/// let _ = b.next_u64(); // independent stream, no effect on `a1`
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    master: u64,
}

impl SeedStream {
    /// Creates a stream factory from a master seed.
    pub fn new(master: u64) -> Self {
        SeedStream { master }
    }

    /// The master seed this factory was created with.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives the deterministic child RNG for `label`.
    pub fn stream(&self, label: &str) -> DetRng {
        DetRng::seed_from_u64(self.master ^ fnv1a(label.as_bytes()))
    }

    /// Derives a child RNG for a `(label, index)` pair — useful for per-node
    /// or per-job streams.
    pub fn indexed_stream(&self, label: &str, index: u64) -> DetRng {
        let mixed = fnv1a(label.as_bytes()) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::seed_from_u64(self.master ^ mixed)
    }
}

/// FNV-1a over bytes: tiny, stable, good enough for label separation.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Convenience: draw a uniform f64 in `[0, 1)` from any `RngCore`.
pub(crate) fn unit_uniform<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits, the standard "u64 >> 11" construction.
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let s = SeedStream::new(7);
        let mut a = s.stream("x");
        let mut b = s.stream("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let s = SeedStream::new(7);
        let mut a = s.stream("arrivals");
        let mut b = s.stream("durations");
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be effectively independent");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeedStream::new(1).stream("x");
        let mut b = SeedStream::new(2).stream("x");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn indexed_streams_differ() {
        let s = SeedStream::new(9);
        let mut a = s.indexed_stream("node", 0);
        let mut b = s.indexed_stream("node", 1);
        assert_ne!(a.next_u64(), b.next_u64());
        // But reproducible.
        let mut a2 = s.indexed_stream("node", 0);
        assert_eq!(
            a2.next_u64(),
            SeedStream::new(9).indexed_stream("node", 0).next_u64()
        );
    }

    #[test]
    fn unit_uniform_in_range() {
        let mut rng = SeedStream::new(3).stream("u");
        for _ in 0..1000 {
            let u = unit_uniform(&mut rng);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
