//! A small, fully safe, deterministic PRNG.
//!
//! The workspace originally used `rand_chacha` for its seeded streams, but
//! its SIMD backend (`ppv-lite86`) showed stack-clobbering behaviour in
//! release builds on some toolchains, and simulation experiments do not
//! need cryptographic strength anyway. `DetRng` is **xoshiro256++**
//! (Blackman & Vigna), seeded through SplitMix64 exactly as the authors
//! recommend — ~20 lines of pure integer arithmetic, no `unsafe`, and
//! bit-for-bit reproducible on every platform and compiler.

use rand::RngCore;

/// Deterministic xoshiro256++ generator.
///
/// Implements [`rand::RngCore`], so it composes with everything in the
/// [`crate::dist`] module and the wider `rand` ecosystem.
///
/// # Example
///
/// ```
/// use rand::RngCore;
/// let mut a = tacc_sim::DetRng::seed_from_u64(7);
/// let mut b = tacc_sim::DetRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        // An all-zero state would be a fixed point; SplitMix64 cannot
        // produce four zeros from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        DetRng { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = DetRng::seed_from_u64(123);
        let mut b = DetRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::seed_from_u64(124);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn roughly_uniform_bits() {
        let mut rng = DetRng::seed_from_u64(5);
        let mut ones = 0u64;
        let n = 10_000;
        for _ in 0..n {
            ones += rng.next_u64().count_ones() as u64;
        }
        let mean = ones as f64 / n as f64;
        assert!((mean - 32.0).abs() < 0.5, "bit bias: {mean}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = DetRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut buf2 = [0u8; 13];
        DetRng::seed_from_u64(9).fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn no_short_cycles() {
        let mut rng = DetRng::seed_from_u64(1);
        let first = rng.next_u64();
        assert!((0..10_000).all(|_| rng.next_u64() != first));
        // Weak check: state never returns to start quickly.
        let mut r2 = DetRng::seed_from_u64(1);
        let _ = r2.next_u64();
        for _ in 0..1000 {
            assert_ne!(r2, DetRng::seed_from_u64(1));
            let _ = r2.next_u64();
        }
    }
}
