//! Virtual time: typed seconds that cannot be confused with wall-clock time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time, measured in seconds since simulation start.
///
/// `SimTime` is a newtype over `f64` seconds ([C-NEWTYPE]): arithmetic with
/// plain floats or with wall-clock types is a compile error, which prevents
/// an entire class of unit bugs in scheduling code.
///
/// [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant `secs` seconds after the epoch.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid sim time {secs}");
        SimTime(secs)
    }

    /// Creates an instant `hours` hours after the epoch.
    pub fn from_hours(hours: f64) -> Self {
        SimTime::from_secs(hours * 3600.0)
    }

    /// Seconds since the epoch.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Hours since the epoch.
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Duration from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: {earlier} is after {self}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

// SimTime intentionally implements Eq/Ord via a helper rather than deriving:
// the inner f64 is guaranteed finite by construction, so total ordering is
// well-defined.
impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimTime is always finite")
    }
}

/// A span of simulated time in seconds. Always nonnegative and finite.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimDuration(f64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration of `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}");
        SimDuration(secs)
    }

    /// Creates a duration of `mins` minutes.
    pub fn from_mins(mins: f64) -> Self {
        SimDuration::from_secs(mins * 60.0)
    }

    /// Creates a duration of `hours` hours.
    pub fn from_hours(hours: f64) -> Self {
        SimDuration::from_secs(hours * 3600.0)
    }

    /// Creates a duration of `days` days.
    pub fn from_days(days: f64) -> Self {
        SimDuration::from_secs(days * 86_400.0)
    }

    /// Length in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Length in hours.
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs` is longer.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration((self.0 - rhs.0).max(0.0))
    }

    /// The longer of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The shorter of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl Eq for SimDuration {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimDuration is always finite")
    }
}

/// A monotonic virtual clock.
///
/// The simulation driver advances the clock to each event's timestamp before
/// handling it; attempts to move backwards panic, surfacing ordering bugs at
/// the moment they happen instead of as corrupted results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// Creates a clock at the epoch.
    pub fn new() -> Self {
        Clock { now: SimTime::ZERO }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock to `t`.
    ///
    /// Advancing to the current time is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(
            t >= self.now,
            "clock moved backwards: {} -> {}",
            self.now,
            t
        );
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(10.0) + SimDuration::from_secs(5.0);
        assert_eq!(t, SimTime::from_secs(15.0));
        assert_eq!(t - SimTime::from_secs(10.0), SimDuration::from_secs(5.0));
        assert_eq!(SimTime::from_hours(1.0).as_secs(), 3600.0);
        assert_eq!(SimDuration::from_days(2.0).as_hours(), 48.0);
    }

    #[test]
    #[should_panic(expected = "invalid sim time")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "is after")]
    fn duration_since_rejects_reversed() {
        let _ = SimTime::from_secs(1.0).duration_since(SimTime::from_secs(2.0));
    }

    #[test]
    fn duration_ops() {
        let d = SimDuration::from_mins(2.0);
        assert_eq!(d.as_secs(), 120.0);
        assert_eq!((d * 2.0).as_secs(), 240.0);
        assert_eq!((d / 4.0).as_secs(), 30.0);
        assert_eq!(
            d.saturating_sub(SimDuration::from_secs(300.0)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_secs(5.0).max(SimDuration::from_secs(3.0)),
            SimDuration::from_secs(5.0)
        );
    }

    #[test]
    fn clock_is_monotonic() {
        let mut c = Clock::new();
        c.advance_to(SimTime::from_secs(3.0));
        c.advance_to(SimTime::from_secs(3.0)); // same time OK
        assert_eq!(c.now(), SimTime::from_secs(3.0));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn clock_rejects_reversal() {
        let mut c = Clock::new();
        c.advance_to(SimTime::from_secs(3.0));
        c.advance_to(SimTime::from_secs(2.0));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs(3.0),
            SimTime::from_secs(1.0),
            SimTime::from_secs(2.0),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::from_secs(1.0));
        assert_eq!(v[2], SimTime::from_secs(3.0));
    }
}
