//! # tacc-sim
//!
//! Deterministic discrete-event simulation engine underlying the `tacc-rs`
//! reproduction.
//!
//! The real TACC system runs on a physical campus GPU cluster; this workspace
//! substitutes a simulated cluster so that every experiment is reproducible
//! on a laptop. The engine here is deliberately minimal and deterministic:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual time as typed wrappers over
//!   seconds, so wall-clock time can never leak into a simulation.
//! * [`EventQueue`] — a priority queue of timestamped events with a strict,
//!   documented tie-break (same-time events pop in scheduling order), so a
//!   given seed always produces the identical execution. Internally a
//!   calendar-queue event wheel; [`HeapEventQueue`] keeps the original
//!   `BinaryHeap` implementation as the differential oracle.
//! * [`Clock`] — a monotonic virtual clock advanced by the simulation driver.
//! * [`SeedStream`] and the [`dist`] module — reproducible random streams
//!   (built on [`DetRng`], a fully safe xoshiro256++ generator) and the
//!   distribution samplers used by the workload generator (exponential,
//!   log-normal, bounded Pareto, …), implemented here so we do not need
//!   `rand_distr` or `rand_chacha`.
//!
//! ## Example: a tiny queueing simulation
//!
//! ```
//! use tacc_sim::{Clock, EventQueue, SimDuration, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Arrive, Depart }
//!
//! let mut clock = Clock::new();
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::ZERO, Ev::Arrive);
//! let mut served = 0;
//! while let Some((t, ev)) = q.pop() {
//!     clock.advance_to(t);
//!     match ev {
//!         Ev::Arrive => {
//!             q.schedule(t + SimDuration::from_secs(2.0), Ev::Depart);
//!         }
//!         Ev::Depart => served += 1,
//!     }
//! }
//! assert_eq!(served, 1);
//! assert_eq!(clock.now(), SimTime::from_secs(2.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
mod event;
mod prng;
mod rng;
mod time;

pub use event::{EventQueue, HeapEventQueue, WheelStats};
pub use prng::DetRng;
pub use rng::SeedStream;
pub use time::{Clock, SimDuration, SimTime};

// The deterministic PRNG and event queue are owned per-platform but move
// across threads with it; this guard keeps the engine thread-portable.
const _: () = {
    const fn sendable<T: Send>() {}
    sendable::<DetRng>();
    sendable::<SeedStream>();
    sendable::<Clock>();
    sendable::<EventQueue<u64>>();
    sendable::<HeapEventQueue<u64>>();
};
