//! The deterministic event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A future event: timestamp, insertion sequence number, payload.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

// BinaryHeap is a max-heap; we invert the ordering to pop the earliest event,
// breaking timestamp ties by insertion order (lower seq first). The FIFO
// tie-break is what makes same-time event handling deterministic.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

/// A priority queue of timestamped events with deterministic ordering.
///
/// Events pop in ascending timestamp order; events scheduled for the same
/// instant pop in the order they were scheduled. Given identical inputs the
/// pop sequence is identical, which is the foundation of reproducible
/// experiments across the workspace.
///
/// # Example
///
/// ```
/// use tacc_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2.0), "late");
/// q.schedule(SimTime::from_secs(1.0), "early");
/// q.schedule(SimTime::from_secs(1.0), "early-2");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "early-2")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (diagnostic counter).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("scheduled_total", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for (t, name) in [(3.0, "c"), (1.0, "a"), (2.0, "b")] {
            q.schedule(SimTime::from_secs(t), name);
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop_stay_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10.0), "x");
        assert_eq!(q.pop().map(|(_, e)| e), Some("x"));
        // Scheduling after popping still orders correctly.
        q.schedule(SimTime::from_secs(20.0), "z");
        q.schedule(SimTime::from_secs(15.0), "y");
        assert_eq!(q.pop().map(|(_, e)| e), Some("y"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("z"));
        assert_eq!(q.scheduled_total(), 3);
    }
}
