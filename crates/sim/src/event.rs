//! The deterministic event queue.
//!
//! Two implementations share one contract: events pop in ascending
//! `(timestamp, insertion-seq)` order, so same-time events are FIFO and a
//! given seed always produces the identical execution.
//!
//! * [`EventQueue`] — the production implementation, a calendar-queue
//!   event wheel: near-future events live in fixed-width time buckets so
//!   the common schedule/pop cycle touches a single `Vec`; far-future
//!   events wait in an overflow heap and cascade into the wheel in window
//!   batches as simulated time advances.
//! * [`HeapEventQueue`] — the original `BinaryHeap` implementation,
//!   retained as the differential oracle. The property tests drive both
//!   with identical scripts and demand byte-equal pop streams.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A future event: timestamp, insertion sequence number, payload.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> Entry<E> {
    /// The total pop-order key: earlier time first, then scheduling order.
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

// BinaryHeap is a max-heap; we invert the ordering to pop the earliest event,
// breaking timestamp ties by insertion order (lower seq first). The FIFO
// tie-break is what makes same-time event handling deterministic.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

/// Work counters maintained by the [`EventQueue`] wheel: deterministic
/// functions of the schedule/pop script, CI-gated alongside the scheduler
/// counters in `BENCH_hotpath.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WheelStats {
    /// Events placed directly into a wheel bucket at schedule time
    /// (the event fired within the current wheel window).
    pub inserts: u64,
    /// Events moved from the overflow heap into wheel buckets when the
    /// wheel emptied and the window advanced (each event cascades at most
    /// once).
    pub cascades: u64,
}

/// Wheel geometry: `BUCKETS` buckets of `WIDTH_SECS` each. The window
/// covers `BUCKETS * WIDTH_SECS` simulated seconds (~68 minutes), sized so
/// the short-horizon churn of a scheduling round — rotations, staging
/// completions, near finishes — stays on the O(1) bucket path while
/// trace-load submits spanning days wait in the overflow heap.
const BUCKETS: usize = 4096;
const MASK: u64 = (BUCKETS - 1) as u64;
const WIDTH_SECS: f64 = 1.0;

/// A priority queue of timestamped events with deterministic ordering.
///
/// Events pop in ascending timestamp order; events scheduled for the same
/// instant pop in the order they were scheduled. Given identical inputs the
/// pop sequence is identical, which is the foundation of reproducible
/// experiments across the workspace.
///
/// Internally a calendar-queue event wheel (see the module docs); the
/// bucket layout is invisible through this API and is continuously checked
/// against [`HeapEventQueue`] by the differential property tests.
///
/// # Example
///
/// ```
/// use tacc_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2.0), "late");
/// q.schedule(SimTime::from_secs(1.0), "early");
/// q.schedule(SimTime::from_secs(1.0), "early-2");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "early-2")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// `BUCKETS` fixed-width buckets. Invariant: every bucketed entry has
    /// `abs_bucket(at) ∈ [cursor, cursor + BUCKETS)`, so each bucket holds
    /// at most one "lap" and position order from the cursor is time order.
    buckets: Vec<Vec<Entry<E>>>,
    /// Absolute (un-wrapped) bucket index of the wheel's current position.
    cursor: u64,
    /// Entries currently in buckets (the rest are in `overflow`).
    in_buckets: usize,
    /// Far-future events (beyond the wheel window), min-first by `(at, seq)`.
    overflow: BinaryHeap<Entry<E>>,
    len: usize,
    next_seq: u64,
    stats: WheelStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Absolute bucket index for a timestamp. Both insertion and the pop scan
/// use this same computation, so boundary timestamps land consistently.
fn abs_bucket(at: SimTime) -> u64 {
    (at.as_secs() / WIDTH_SECS).floor() as u64
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..BUCKETS).map(|_| Vec::new()).collect(),
            cursor: 0,
            in_buckets: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            next_seq: 0,
            stats: WheelStats::default(),
        }
    }

    /// Schedules `payload` to fire at time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { at, seq, payload };
        let abs = abs_bucket(at);
        if abs < self.cursor {
            // Scheduling into the past (never done by the platform, but
            // allowed by the API): evacuate the wheel so the single-lap
            // invariant survives the cursor rewind.
            self.rewind(abs);
        }
        self.len += 1;
        if abs < self.cursor + BUCKETS as u64 {
            self.stats.inserts += 1;
            self.in_buckets += 1;
            self.buckets[(abs & MASK) as usize].push(entry);
        } else {
            self.overflow.push(entry);
        }
    }

    /// Removes and returns the earliest event, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        if self.in_buckets == 0 {
            self.cascade();
        }
        let bucket_pos = self.scan_buckets();
        // An overflow entry can be earlier than every bucketed one when it
        // was scheduled beyond the window that existed at its insert time
        // and the cursor has since advanced past it.
        let from_overflow = match (bucket_pos, self.overflow.peek()) {
            (Some((pos, idx)), Some(over)) => over.key() < self.buckets[pos][idx].key(),
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => unreachable!("len > 0 but no entry found"),
        };
        self.len -= 1;
        if from_overflow {
            // tacc-lint: allow(panic-surface, reason = "pop follows a successful peek of the same heap; the candidate cannot vanish in between")
            let e = self.overflow.pop().expect("peeked entry present");
            return Some((e.at, e.payload));
        }
        // tacc-lint: allow(panic-surface, reason = "from_overflow is false only when the bucket scan produced a candidate")
        let (pos, idx) = bucket_pos.expect("bucket candidate present");
        self.cursor = abs_bucket(self.buckets[pos][idx].at);
        self.in_buckets -= 1;
        let e = self.buckets[pos].swap_remove(idx);
        Some((e.at, e.payload))
    }

    /// Timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        let bucket_at = self
            .scan_buckets()
            .map(|(pos, idx)| self.buckets[pos][idx].key());
        let overflow_at = self.overflow.peek().map(Entry::key);
        match (bucket_at, overflow_at) {
            (Some(b), Some(o)) => Some(b.min(o).0),
            (Some(b), None) => Some(b.0),
            (None, Some(o)) => Some(o.0),
            (None, None) => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events ever scheduled (diagnostic counter).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// The wheel's deterministic work counters.
    pub fn wheel_stats(&self) -> WheelStats {
        self.stats
    }

    /// Finds the earliest bucketed entry: first non-empty bucket position
    /// at or after the cursor (single-lap invariant makes position order
    /// time order), then the min `(at, seq)` within it. Read-only; `pop`
    /// advances the cursor afterwards so repeated scans stay amortized
    /// O(1) per event.
    fn scan_buckets(&self) -> Option<(usize, usize)> {
        if self.in_buckets == 0 {
            return None;
        }
        for step in 0..BUCKETS as u64 {
            let pos = ((self.cursor + step) & MASK) as usize;
            let bucket = &self.buckets[pos];
            if bucket.is_empty() {
                continue;
            }
            let idx = bucket
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.key())
                .map(|(i, _)| i)
                // tacc-lint: allow(panic-surface, reason = "minimum over a bucket checked non-empty two lines up")
                .expect("bucket is non-empty");
            return Some((pos, idx));
        }
        unreachable!("in_buckets > 0 but all buckets empty");
    }

    /// Advances the window to the earliest overflow event and moves every
    /// overflow event inside the new window into its bucket. Called only
    /// when the wheel is empty, so the cursor may move freely.
    fn cascade(&mut self) {
        debug_assert_eq!(self.in_buckets, 0);
        let Some(front) = self.overflow.peek() else {
            return;
        };
        self.cursor = abs_bucket(front.at);
        let window_end = self.cursor + BUCKETS as u64;
        while let Some(front) = self.overflow.peek() {
            let abs = abs_bucket(front.at);
            if abs >= window_end {
                break;
            }
            // tacc-lint: allow(panic-surface, reason = "pop follows a successful peek of the same heap; the candidate cannot vanish in between")
            let entry = self.overflow.pop().expect("peeked entry present");
            self.stats.cascades += 1;
            self.in_buckets += 1;
            self.buckets[(abs & MASK) as usize].push(entry);
        }
    }

    /// Cursor rewind for past-scheduling: dump all bucketed entries into
    /// the overflow heap (they re-enter via `cascade`), then move the
    /// cursor back.
    fn rewind(&mut self, abs: u64) {
        if self.in_buckets > 0 {
            for bucket in &mut self.buckets {
                for entry in bucket.drain(..) {
                    self.overflow.push(entry);
                }
            }
            self.in_buckets = 0;
        }
        self.cursor = abs;
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len)
            .field("scheduled_total", &self.next_seq)
            .field("in_buckets", &self.in_buckets)
            .field("cursor", &self.cursor)
            .field("stats", &self.stats)
            .finish()
    }
}

/// The original `BinaryHeap`-backed queue, kept as the differential oracle
/// for [`EventQueue`]. Same API, same `(timestamp, seq)` contract; the
/// property tests in this module and `crates/sim/tests/` drive both with
/// identical scripts and require byte-equal pop streams.
#[derive(Default)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (diagnostic counter).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

impl<E> std::fmt::Debug for HeapEventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapEventQueue")
            .field("pending", &self.heap.len())
            .field("scheduled_total", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for (t, name) in [(3.0, "c"), (1.0, "a"), (2.0, "b")] {
            q.schedule(SimTime::from_secs(t), name);
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    /// The FIFO tie-break regression test of ISSUE 9: same-timestamp
    /// events must pop in scheduling order on *both* implementations,
    /// including timestamps that sit exactly on a bucket boundary and in
    /// the far-future (overflow) region of the wheel.
    #[test]
    fn same_time_fifo_holds_for_wheel_and_oracle() {
        // Exact bucket boundary, mid-bucket, and beyond-window times.
        let boundary = WIDTH_SECS * 7.0;
        let far = WIDTH_SECS * (BUCKETS as f64) * 3.5;
        for t in [boundary, boundary + 0.25, far] {
            let at = SimTime::from_secs(t);
            let mut wheel = EventQueue::new();
            let mut oracle = HeapEventQueue::new();
            for i in 0..64 {
                wheel.schedule(at, i);
                oracle.schedule(at, i);
            }
            let w: Vec<i32> = std::iter::from_fn(|| wheel.pop().map(|(_, e)| e)).collect();
            let o: Vec<i32> = std::iter::from_fn(|| oracle.pop().map(|(_, e)| e)).collect();
            assert_eq!(w, (0..64).collect::<Vec<_>>(), "wheel FIFO at t={t}");
            assert_eq!(o, (0..64).collect::<Vec<_>>(), "oracle FIFO at t={t}");
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop_stay_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10.0), "x");
        assert_eq!(q.pop().map(|(_, e)| e), Some("x"));
        // Scheduling after popping still orders correctly.
        q.schedule(SimTime::from_secs(20.0), "z");
        q.schedule(SimTime::from_secs(15.0), "y");
        assert_eq!(q.pop().map(|(_, e)| e), Some("y"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("z"));
        assert_eq!(q.scheduled_total(), 3);
    }

    #[test]
    fn far_future_events_cascade_from_overflow() {
        let mut q = EventQueue::new();
        let far = SimTime::from_secs(WIDTH_SECS * (BUCKETS as f64) * 2.0 + 13.0);
        q.schedule(far, "far");
        q.schedule(SimTime::from_secs(1.0), "near");
        assert_eq!(q.wheel_stats().inserts, 1, "only the near event buckets");
        assert_eq!(q.pop().map(|(_, e)| e), Some("near"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("far"));
        assert_eq!(q.wheel_stats().cascades, 1, "the far event cascaded in");
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_resident_event_inside_advanced_window_pops_in_order() {
        // An event beyond the window at insert time stays in overflow even
        // after the cursor advances past its bucket; pop must still return
        // it in global order.
        let mut q = EventQueue::new();
        let window = WIDTH_SECS * BUCKETS as f64;
        q.schedule(SimTime::from_secs(0.5), "t0");
        q.schedule(SimTime::from_secs(window + 10.0), "overflowed");
        assert_eq!(q.pop().map(|(_, e)| e), Some("t0"));
        // Advance the cursor beyond the overflowed event's bucket via a
        // bucketed event that is later than it.
        q.schedule(SimTime::from_secs(window + 500.0), "later");
        assert_eq!(q.pop().map(|(_, e)| e), Some("overflowed"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("later"));
        assert!(q.is_empty());
    }

    #[test]
    fn scheduling_into_the_past_rewinds_correctly() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5_000.0), "b");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        q.schedule(SimTime::from_secs(6_000.0), "c");
        q.schedule(SimTime::from_secs(1.0), "past");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("past"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("c"));
        assert!(q.is_empty());
    }

    #[test]
    fn heap_oracle_matches_wheel_on_mixed_script() {
        let mut wheel = EventQueue::new();
        let mut oracle = HeapEventQueue::new();
        let times = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0];
        for (i, t) in times.iter().enumerate() {
            let at = SimTime::from_secs(t * WIDTH_SECS * BUCKETS as f64 / 4.0);
            wheel.schedule(at, i);
            oracle.schedule(at, i);
        }
        loop {
            let (w, o) = (wheel.pop(), oracle.pop());
            assert_eq!(w, o);
            if w.is_none() {
                break;
            }
        }
    }
}
