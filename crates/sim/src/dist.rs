//! Distribution samplers used by the workload generator.
//!
//! Shared GPU-cluster traces have well-documented shapes: Poisson-ish
//! arrivals modulated by a diurnal cycle, heavy-tailed (log-normal /
//! Pareto-like) job durations, and power-of-two GPU demands. This module
//! implements exactly the samplers those shapes need, from first principles,
//! so the workspace does not depend on `rand_distr`.
//!
//! All samplers take `&mut impl RngCore` so they compose with the labelled
//! streams from [`crate::SeedStream`].

use rand::RngCore;

use crate::rng::unit_uniform;

/// Samples `Exp(rate)` (mean `1/rate`) by inverse transform.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive.
pub fn exponential<R: RngCore + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    let u = unit_uniform(rng);
    // u in [0,1); 1-u in (0,1] so ln is finite.
    -(1.0 - u).ln() / rate
}

/// Samples a standard normal via Box–Muller.
pub fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0,1] to keep ln finite.
    let u1 = 1.0 - unit_uniform(rng);
    let u2 = unit_uniform(rng);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `Normal(mean, std_dev)`.
///
/// # Panics
///
/// Panics if `std_dev` is negative.
pub fn normal<R: RngCore + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0, "std_dev must be nonnegative");
    mean + std_dev * standard_normal(rng)
}

/// Samples `LogNormal(mu, sigma)` — i.e. `exp(Normal(mu, sigma))`.
///
/// This is the canonical heavy-tailed model for ML job durations: most jobs
/// are minutes, a long tail runs for days.
///
/// # Panics
///
/// Panics if `sigma` is negative.
pub fn log_normal<R: RngCore + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Samples a bounded Pareto on `[lo, hi]` with shape `alpha`, by inverse
/// transform of the truncated CDF.
///
/// # Panics
///
/// Panics unless `0 < lo < hi` and `alpha > 0`.
pub fn bounded_pareto<R: RngCore + ?Sized>(rng: &mut R, alpha: f64, lo: f64, hi: f64) -> f64 {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    assert!(alpha > 0.0, "alpha must be positive");
    let u = unit_uniform(rng);
    let la = lo.powf(alpha);
    let ha = hi.powf(alpha);
    // Inverse CDF of the truncated Pareto.
    let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha);
    x.clamp(lo, hi)
}

/// Samples a uniform f64 in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo < hi, "empty uniform range");
    lo + (hi - lo) * unit_uniform(rng)
}

/// Samples an index from a discrete distribution given by nonnegative
/// weights (they need not sum to 1).
///
/// # Panics
///
/// Panics if `weights` is empty, contains a negative value, or sums to zero.
pub fn weighted_index<R: RngCore + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weighted_index needs weights");
    assert!(
        weights.iter().all(|&w| w >= 0.0),
        "weights must be nonnegative"
    );
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must not all be zero");
    let mut target = unit_uniform(rng) * total;
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1 // numerical fallthrough lands on the final bucket
}

/// Bernoulli draw with probability `p` of `true`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn coin<R: RngCore + ?Sized>(rng: &mut R, p: f64) -> bool {
    assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
    unit_uniform(rng) < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedStream;

    fn rng() -> crate::DetRng {
        SeedStream::new(1234).stream("dist-tests")
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean} far from 2.0");
    }

    #[test]
    fn exponential_nonnegative() {
        let mut r = rng();
        assert!((0..1000).all(|_| exponential(&mut r, 3.0) >= 0.0));
    }

    #[test]
    fn normal_moments_close() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1);
        assert!((var.sqrt() - 3.0).abs() < 0.1);
    }

    #[test]
    fn log_normal_median_close() {
        let mut r = rng();
        let n = 20_001;
        let mut samples: Vec<f64> = (0..n).map(|_| log_normal(&mut r, 2.0, 1.0)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = samples[n / 2];
        // Median of LogNormal(mu, sigma) is exp(mu).
        assert!((median - 2.0f64.exp()).abs() / 2.0f64.exp() < 0.07);
    }

    #[test]
    fn bounded_pareto_stays_in_range() {
        let mut r = rng();
        for _ in 0..5000 {
            let x = bounded_pareto(&mut r, 1.1, 10.0, 10_000.0);
            assert!((10.0..=10_000.0).contains(&x));
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| bounded_pareto(&mut r, 1.0, 1.0, 1000.0))
            .collect();
        let below_10 = samples.iter().filter(|&&x| x < 10.0).count() as f64 / n as f64;
        // For alpha=1 truncated at 1000, ~90% of mass is below 10 (CDF ≈ (1-1/x)/(1-1/1000)).
        assert!(below_10 > 0.8, "lower mass {below_10}");
        assert!(samples.iter().any(|&x| x > 500.0), "tail never sampled");
    }

    #[test]
    fn uniform_in_range_and_spread() {
        let mut r = rng();
        let samples: Vec<f64> = (0..1000).map(|_| uniform(&mut r, 5.0, 6.0)).collect();
        assert!(samples.iter().all(|&x| (5.0..6.0).contains(&x)));
        let mean = samples.iter().sum::<f64>() / 1000.0;
        assert!((mean - 5.5).abs() < 0.05);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[weighted_index(&mut r, &w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn coin_is_calibrated() {
        let mut r = rng();
        let heads = (0..10_000).filter(|_| coin(&mut r, 0.25)).count();
        assert!((heads as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        exponential(&mut rng(), 0.0);
    }

    #[test]
    #[should_panic(expected = "weights")]
    fn weighted_index_rejects_empty() {
        weighted_index(&mut rng(), &[]);
    }
}
