//! Differential property test: the calendar-wheel [`EventQueue`] and the
//! [`HeapEventQueue`] oracle must stay byte-equal in pop order for any
//! insert/pop script — including timestamps that sit exactly on bucket
//! boundaries, same-instant bursts (FIFO tie-break), and far-future
//! events that ride the overflow heap and cascade into the wheel.
//!
//! Scripts are driven by a deterministic xorshift generator, mirroring
//! the scheduler differential suite's harness form.

use tacc_sim::{EventQueue, HeapEventQueue, SimTime};

/// Deterministic xorshift64* generator — no dependencies, stable forever.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// Wheel geometry mirrored from `crates/sim/src/event.rs` so the script
/// generator can aim at bucket boundaries and the overflow region. The
/// differential assertion itself does not depend on these values being
/// exact — any drift only shifts which cases the script emphasises.
const WHEEL_WINDOW_SECS: f64 = 4096.0;

/// Samples an event timestamp, biased toward the wheel's interesting
/// regions: near the current virtual time, exactly on bucket boundaries,
/// same-instant repeats, and far beyond the window (overflow + cascade).
fn sample_time(rng: &mut XorShift, now: f64, last: &mut f64) -> f64 {
    match rng.below(8) {
        // Near future: the common bucket path.
        0..=2 => now + rng.below(600) as f64 / 10.0,
        // Exactly on a bucket boundary (integral seconds).
        3 => now.ceil() + rng.below(64) as f64,
        // Same instant as a previous event: exercises the FIFO tie-break.
        4 => *last,
        // Just inside / just outside the window edge.
        5 => now + WHEEL_WINDOW_SECS + (rng.below(5) as f64 - 2.0),
        // Far future: overflow heap, cascades in much later.
        6 => now + WHEEL_WINDOW_SECS * (2 + rng.below(5)) as f64 + rng.below(1000) as f64 / 7.0,
        // Distant same-bucket cluster: several laps out, collides modulo
        // the bucket count with near events.
        _ => now + WHEEL_WINDOW_SECS * rng.below(3) as f64 + rng.below(32) as f64,
    }
}

/// Runs one xorshift-driven script against both queues and demands the
/// pop streams match element-for-element, then drains both to the end.
fn run_script(seed: u64, steps: usize) {
    let mut rng = XorShift::new(seed);
    let mut wheel = EventQueue::new();
    let mut oracle = HeapEventQueue::new();
    let mut now = 0.0_f64;
    let mut last = 0.0_f64;
    let mut payload = 0u64;
    for step in 0..steps {
        // Bias toward inserts so the queues grow and cascades happen.
        if rng.below(3) < 2 || wheel.is_empty() {
            let t = sample_time(&mut rng, now, &mut last);
            last = t;
            let at = SimTime::from_secs(t);
            wheel.schedule(at, payload);
            oracle.schedule(at, payload);
            payload += 1;
        } else {
            let w = wheel.pop();
            let o = oracle.pop();
            assert_eq!(w, o, "pop diverged [seed {seed}, step {step}]");
            if let Some((t, _)) = w {
                // Virtual time follows the pop stream, like a real sim.
                now = now.max(t.as_secs());
            }
        }
        assert_eq!(
            wheel.len(),
            oracle.len(),
            "len diverged [seed {seed}, step {step}]"
        );
        assert_eq!(
            wheel.peek_time(),
            oracle.peek_time(),
            "peek diverged [seed {seed}, step {step}]"
        );
    }
    loop {
        let w = wheel.pop();
        let o = oracle.pop();
        assert_eq!(w, o, "drain diverged [seed {seed}]");
        if w.is_none() {
            break;
        }
    }
    assert_eq!(wheel.scheduled_total(), oracle.scheduled_total());
}

#[test]
fn wheel_matches_heap_oracle_across_seeds() {
    for seed in 1..=40 {
        run_script(seed, 400);
    }
}

#[test]
fn wheel_matches_heap_oracle_long_scripts() {
    for seed in [7, 99, 20_240_601] {
        run_script(seed, 5_000);
    }
}

#[test]
fn wheel_handles_all_same_instant_burst() {
    let mut wheel = EventQueue::new();
    let mut oracle = HeapEventQueue::new();
    let at = SimTime::from_secs(12_345.0);
    for i in 0..1_000u32 {
        wheel.schedule(at, i);
        oracle.schedule(at, i);
    }
    for _ in 0..=1_000 {
        assert_eq!(wheel.pop(), oracle.pop());
    }
}
