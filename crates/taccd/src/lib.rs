//! # tacc-taccd
//!
//! The long-running service daemon (`taccd`): the front door that turns
//! the deterministic batch platform into the multi-tenant online
//! service the paper operates (DESIGN.md, "Service mode & write-ahead
//! journal").
//!
//! Three pieces, strictly layered:
//!
//! * [`journal`] — the single-writer write-ahead journal: checksummed
//!   frames of [`tacc_core::CommandRecord`]s, group-committed with
//!   batched `fsync`, recovered to the longest valid prefix after a
//!   crash;
//! * [`engine`] — one thread owning the [`tacc_core::Platform`] and
//!   the journal, draining client messages in arrival order (journal →
//!   fsync → acknowledge), so the core below stays single-threaded and
//!   replayable;
//! * [`daemon`] — the Unix-socket edge: an accept loop and
//!   per-connection threads speaking checksummed JSON frames, the one
//!   place in the workspace where threads and channels are load-bearing
//!   (the concurrency lint family exempts exactly this crate).
//!
//! The invariant the whole design hangs on: **a restarted daemon
//! byte-reproduces the lifecycle engine's transition log from its
//! journal.** Commands are validated and stamped before they are
//! journalled; the platform is deterministic; therefore replaying the
//! journal's longest valid prefix reconstructs the exact pre-crash
//! state — CI kills the daemon with SIGKILL mid-load and `cmp`s the
//! transition JSONL to prove it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod engine;
pub mod journal;

pub use daemon::{Daemon, DaemonConfig, DaemonError};
pub use engine::{ClockMode, Engine, EngineConfig, EngineInitError, Msg, Query, Reply};
pub use journal::{Journal, JournalError, JournalStats, RecoveryReport};
