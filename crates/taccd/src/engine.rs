//! The single-writer engine: one thread owning the deterministic
//! [`Platform`] and the write-ahead [`Journal`], draining a channel of
//! client messages in arrival order with group-committed durability.
//!
//! ## Batch protocol
//!
//! The engine blocks on the channel, then drains up to
//! [`MAX_BATCH`] queued messages and processes them **in arrival
//! order**: a mutate is stamped, applied to the platform and (on
//! success) appended to the journal; a query is answered against the
//! state as of its position in the stream. After the batch, one
//! [`Journal::sync`] makes every accepted command durable, and only
//! then are the buffered replies released — no client sees an
//! acknowledgment for a command that could be lost by a crash, and
//! one `fsync` is amortized over the whole batch.
//!
//! ## Clock modes
//!
//! * [`ClockMode::Logical`] — commands are stamped at the platform's
//!   current simulation time; time moves only via `Command::Advance`.
//!   Fully deterministic end to end (what the recovery tests and CI
//!   use).
//! * [`ClockMode::Wall`] — commands are stamped with wall-clock
//!   seconds since daemon start, clamped monotone. Replay still
//!   byte-reproduces, because replay uses the *recorded* stamps.

use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::time::Instant;

use tacc_core::wire::{obj, Json};
use tacc_core::{Command, CommandOutcome, CommandRecord, Platform, PlatformConfig};
use tacc_obs::{Counter, MetricsRegistry};

use crate::journal::{Journal, JournalError, RecoveryReport};

/// Upper bound on messages drained into one group-commit batch.
pub const MAX_BATCH: usize = 64;

/// How command timestamps are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// Stamp at the platform's current simulation time (deterministic).
    #[default]
    Logical,
    /// Stamp with monotone wall-clock seconds since daemon start.
    Wall,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Journal file path. Created if absent; recovered (and replayed)
    /// if present.
    pub journal: PathBuf,
    /// Platform configuration; the seed is written into the journal
    /// genesis frame and checked on recovery.
    pub platform: PlatformConfig,
    /// Timestamp source.
    pub clock: ClockMode,
}

/// A read-only question answered from engine state.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// One job's status snapshot.
    Status {
        /// Job id value.
        job: u64,
    },
    /// Status snapshots for every job, in id order.
    List,
    /// The event-bus records for one job.
    Events {
        /// Job id value.
        job: u64,
    },
    /// Daemon + cluster overview.
    Info,
    /// Prometheus text exposition (platform + daemon series).
    Metrics,
    /// The full transition log as JSONL (the replay-equivalence probe).
    Transitions,
    /// Journal counters.
    JournalStats,
}

/// A message from a connection thread to the engine.
#[derive(Debug)]
pub enum Msg {
    /// Apply a command (journalled, group-committed).
    Mutate {
        /// The command to apply.
        command: Command,
        /// Where to send the reply.
        reply: Sender<Reply>,
    },
    /// Answer a query (not journalled).
    Query {
        /// The query.
        query: Query,
        /// Where to send the reply.
        reply: Sender<Reply>,
    },
    /// Shut the engine down after the current batch.
    Stop,
}

/// The engine's answer: the `ok` payload or a typed error.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Success; the JSON payload for the `ok` response field.
    Ok(Json),
    /// Failure; a stable error kind tag plus a human-readable message.
    Err {
        /// Stable kind tag (e.g. `unknown-job`).
        kind: String,
        /// Human-readable description.
        message: String,
    },
}

struct EngineMetrics {
    fsyncs: Counter,
    frames: Counter,
    recoveries: Counter,
    torn: Counter,
    commands: Counter,
    rejects: Counter,
    queries: Counter,
}

impl EngineMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        EngineMetrics {
            fsyncs: registry.counter("tacc_taccd_journal_fsyncs_total", &[]),
            frames: registry.counter("tacc_taccd_journal_frames_total", &[]),
            recoveries: registry.counter("tacc_taccd_recoveries_total", &[]),
            torn: registry.counter("tacc_taccd_torn_frames_total", &[]),
            commands: registry.counter("tacc_taccd_commands_applied_total", &[]),
            rejects: registry.counter("tacc_taccd_commands_rejected_total", &[]),
            queries: registry.counter("tacc_taccd_queries_total", &[]),
        }
    }
}

/// Why the engine could not start.
#[derive(Debug)]
pub enum EngineInitError {
    /// The journal could not be opened/recovered.
    Journal(JournalError),
    /// A recovered record failed to replay — the journal holds a record
    /// that never could have been accepted live, i.e. corruption that
    /// slipped past the frame checksums.
    Replay {
        /// Sequence number of the offending record.
        seq: u64,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for EngineInitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineInitError::Journal(e) => write!(f, "{e}"),
            EngineInitError::Replay { seq, message } => {
                write!(f, "journal replay failed at seq {seq}: {message}")
            }
        }
    }
}

impl std::error::Error for EngineInitError {}

impl From<JournalError> for EngineInitError {
    fn from(e: JournalError) -> Self {
        EngineInitError::Journal(e)
    }
}

/// The single-writer service engine.
pub struct Engine {
    platform: Platform,
    journal: Journal,
    registry: MetricsRegistry,
    metrics: EngineMetrics,
    clock: ClockMode,
    next_seq: u64,
    last_stamp: f64,
    started: Instant,
    /// Synced journal counters the metrics were last reconciled to.
    flushed: (u64, u64),
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("journal", &self.journal.path())
            .field("clock", &self.clock)
            .field("next_seq", &self.next_seq)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Opens (or creates) the journal and builds the engine. An existing
    /// journal is recovered: its longest valid prefix is replayed into a
    /// fresh platform, byte-reproducing the pre-crash state, and any
    /// torn tail is truncated. Returns the recovery report (`None` for a
    /// freshly created journal).
    ///
    /// # Errors
    ///
    /// [`EngineInitError`] when the journal cannot be opened or a
    /// recovered record fails to replay.
    pub fn open(config: EngineConfig) -> Result<(Engine, Option<RecoveryReport>), EngineInitError> {
        let registry = MetricsRegistry::new();
        let metrics = EngineMetrics::new(&registry);
        let seed = config.platform.seed;
        let mut platform = Platform::new(config.platform.clone());
        let (journal, report) = if config.journal.exists() {
            let (journal, records, report) = Journal::recover(&config.journal, seed)?;
            for (i, record) in records.iter().enumerate() {
                if record.seq != i as u64 {
                    return Err(EngineInitError::Replay {
                        seq: record.seq,
                        message: format!("expected dense sequence {i}"),
                    });
                }
                platform
                    .apply_record(record)
                    .map_err(|e| EngineInitError::Replay {
                        seq: record.seq,
                        message: e.to_string(),
                    })?;
            }
            metrics.recoveries.inc();
            if report.torn() {
                metrics.torn.inc();
            }
            (journal, Some(report))
        } else {
            (Journal::create(&config.journal, seed)?, None)
        };
        let next_seq = report.as_ref().map(|r| r.frames).unwrap_or(0);
        let last_stamp = platform.now().as_secs();
        Ok((
            Engine {
                platform,
                journal,
                registry,
                metrics,
                clock: config.clock,
                next_seq,
                last_stamp,
                // tacc-lint: allow(wall-clock, reason = "daemon start anchor for ClockMode::Wall stamps; replay uses the recorded stamps, so determinism is unaffected")
                started: Instant::now(),
                flushed: (0, 0),
            },
            report,
        ))
    }

    /// The engine-side metrics registry (`tacc_taccd_*` series). The
    /// daemon clones gauge handles out of it (e.g. connected clients).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Runs the engine loop until the channel closes or a [`Msg::Stop`]
    /// arrives. This consumes the thread; spawn it.
    pub fn run(mut self, rx: &Receiver<Msg>) {
        loop {
            let Ok(first) = rx.recv() else {
                break; // all senders gone
            };
            let mut batch = Vec::with_capacity(8);
            batch.push(first);
            while batch.len() < MAX_BATCH {
                match rx.try_recv() {
                    Ok(msg) => batch.push(msg),
                    Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
                }
            }
            if !self.process_batch(batch) {
                break;
            }
        }
        // Final durability point before the thread exits.
        let _ = self.journal.sync();
        self.reconcile_metrics();
    }

    /// Processes one batch; returns `false` when a `Stop` was seen.
    fn process_batch(&mut self, batch: Vec<Msg>) -> bool {
        let mut replies: Vec<(Sender<Reply>, Reply)> = Vec::with_capacity(batch.len());
        let mut keep_running = true;
        for msg in batch {
            match msg {
                Msg::Mutate { command, reply } => {
                    let outcome = self.apply_mutate(&command);
                    replies.push((reply, outcome));
                }
                Msg::Query { query, reply } => {
                    self.metrics.queries.inc();
                    let answer = self.answer_query(&query);
                    replies.push((reply, answer));
                }
                Msg::Stop => keep_running = false,
            }
        }
        // Group commit: everything accepted above becomes durable in one
        // fsync; only then do acknowledgments leave the engine.
        if let Err(e) = self.journal.sync() {
            // Durability failed: every accepted mutate in this batch must
            // be refused, not acknowledged. The platform state is ahead
            // of the journal now; the daemon restarts from the journal,
            // so refusing is the honest answer.
            let kind = "journal-io".to_owned();
            let message = e.to_string();
            for (_, r) in replies.iter_mut() {
                if matches!(r, Reply::Ok(_)) {
                    *r = Reply::Err {
                        kind: kind.clone(),
                        message: message.clone(),
                    };
                }
            }
        }
        self.reconcile_metrics();
        for (tx, reply) in replies {
            let _ = tx.send(reply); // a vanished client is not an engine error
        }
        keep_running
    }

    /// Stamps, applies and journals one command.
    fn apply_mutate(&mut self, command: &Command) -> Reply {
        let at_secs = self.stamp();
        let record = CommandRecord {
            seq: self.next_seq,
            at_secs,
            command: command.clone(),
        };
        match self.platform.apply_record(&record) {
            Ok(outcome) => {
                if let Err(e) = self.journal.append_frame(&record) {
                    // Could not journal an applied command: refuse it (the
                    // client will retry against recovered state).
                    self.metrics.rejects.inc();
                    return Reply::Err {
                        kind: "journal-io".to_owned(),
                        message: e.to_string(),
                    };
                }
                self.next_seq += 1;
                self.last_stamp = at_secs;
                self.metrics.commands.inc();
                Reply::Ok(outcome_json(record.seq, at_secs, &outcome))
            }
            Err(e) => {
                self.metrics.rejects.inc();
                Reply::Err {
                    kind: e.kind().to_owned(),
                    message: e.to_string(),
                }
            }
        }
    }

    /// The timestamp for a command arriving now.
    fn stamp(&self) -> f64 {
        match self.clock {
            ClockMode::Logical => self.platform.now().as_secs(),
            ClockMode::Wall => {
                let elapsed = self.started.elapsed().as_secs_f64();
                elapsed.max(self.last_stamp)
            }
        }
    }

    fn answer_query(&self, query: &Query) -> Reply {
        match query {
            Query::Status { job } => {
                let id = tacc_workload::JobId::from_value(*job);
                match self.platform.job_status(id) {
                    Some(status) => Reply::Ok(status_json(&status)),
                    None => Reply::Err {
                        kind: "unknown-job".to_owned(),
                        message: format!("unknown job {job}"),
                    },
                }
            }
            Query::List => {
                let statuses = self
                    .platform
                    .job_ids()
                    .into_iter()
                    .filter_map(|id| self.platform.job_status(id))
                    .map(|s| status_json(&s))
                    .collect();
                Reply::Ok(Json::Arr(statuses))
            }
            Query::Events { job } => {
                let id = tacc_workload::JobId::from_value(*job);
                if self.platform.job(id).is_none() {
                    return Reply::Err {
                        kind: "unknown-job".to_owned(),
                        message: format!("unknown job {job}"),
                    };
                }
                let events = self
                    .platform
                    .job_events(id)
                    .into_iter()
                    .map(|rec| {
                        obj(vec![
                            ("seq", Json::Num(rec.seq as f64)),
                            ("at_secs", Json::Num(rec.at_secs)),
                            ("event", Json::Str(rec.event.to_string())),
                        ])
                    })
                    .collect();
                Reply::Ok(Json::Arr(events))
            }
            Query::Info => {
                let cluster = self.platform.cluster();
                Reply::Ok(obj(vec![
                    (
                        "protocol",
                        Json::Num(tacc_core::wire::PROTOCOL_VERSION as f64),
                    ),
                    ("now_secs", Json::Num(self.platform.now().as_secs())),
                    ("nodes", Json::Num(cluster.node_count() as f64)),
                    ("total_gpus", Json::Num(f64::from(cluster.total_gpus()))),
                    ("jobs", Json::Num(self.platform.job_ids().len() as f64)),
                    ("journal_seq", Json::Num(self.next_seq as f64)),
                ]))
            }
            Query::Metrics => {
                let mut text = self.platform.metrics_text();
                text.push_str(&self.registry.expose());
                Reply::Ok(Json::Str(text))
            }
            Query::Transitions => Reply::Ok(Json::Str(self.platform.transition_log_jsonl())),
            Query::JournalStats => {
                let stats = self.journal.stats();
                Reply::Ok(obj(vec![
                    ("appended", Json::Num(stats.appended as f64)),
                    ("syncs", Json::Num(stats.syncs as f64)),
                    ("dirty", Json::Num(stats.dirty as f64)),
                    ("next_seq", Json::Num(self.next_seq as f64)),
                ]))
            }
        }
    }

    /// Mirrors journal counter deltas into the monotone metrics.
    fn reconcile_metrics(&mut self) {
        let stats = self.journal.stats();
        let (frames, fsyncs) = self.flushed;
        if stats.appended > frames {
            self.metrics.frames.inc_by(stats.appended - frames);
        }
        if stats.syncs > fsyncs {
            self.metrics.fsyncs.inc_by(stats.syncs - fsyncs);
        }
        self.flushed = (stats.appended, stats.syncs);
    }
}

fn outcome_json(seq: u64, at_secs: f64, outcome: &CommandOutcome) -> Json {
    let mut fields = vec![
        ("seq", Json::Num(seq as f64)),
        ("at_secs", Json::Num(at_secs)),
    ];
    match outcome {
        CommandOutcome::Submitted { job } => {
            fields.push(("outcome", Json::Str("submitted".to_owned())));
            fields.push(("job", Json::Num(job.value() as f64)));
        }
        CommandOutcome::Cancelled { job, applied } => {
            fields.push(("outcome", Json::Str("cancelled".to_owned())));
            fields.push(("job", Json::Num(job.value() as f64)));
            fields.push(("applied", Json::Bool(*applied)));
        }
        CommandOutcome::Reserved => {
            fields.push(("outcome", Json::Str("reserved".to_owned())));
        }
        CommandOutcome::NodeFaulted { node, jobs } => {
            fields.push(("outcome", Json::Str("node-faulted".to_owned())));
            fields.push(("node", Json::Num(node.index() as f64)));
            fields.push((
                "jobs",
                Json::Arr(jobs.iter().map(|j| Json::Num(j.value() as f64)).collect()),
            ));
        }
        CommandOutcome::Drained { node } => {
            fields.push(("outcome", Json::Str("drained".to_owned())));
            fields.push(("node", Json::Num(node.index() as f64)));
        }
        CommandOutcome::Undrained { node } => {
            fields.push(("outcome", Json::Str("undrained".to_owned())));
            fields.push(("node", Json::Num(node.index() as f64)));
        }
        CommandOutcome::Advanced { now_secs } => {
            fields.push(("outcome", Json::Str("advanced".to_owned())));
            fields.push(("now_secs", Json::Num(*now_secs)));
        }
    }
    obj(fields)
}

fn status_json(status: &tacc_core::JobStatus) -> Json {
    obj(vec![
        ("job", Json::Num(status.id.value() as f64)),
        ("state", Json::Str(format!("{:?}", status.state))),
        ("name", Json::Str(status.name.clone())),
        (
            "nodes",
            Json::Arr(
                status
                    .nodes
                    .iter()
                    .map(|n| Json::Num(n.index() as f64))
                    .collect(),
            ),
        ),
        ("submit_secs", Json::Num(status.submit_secs)),
        ("remaining_secs", Json::Num(status.remaining_secs)),
        ("preemptions", Json::Num(f64::from(status.preemptions))),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use tacc_workload::{GroupId, TaskSchema};

    fn temp_journal(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("taccd-engine-test-{tag}-{}", std::process::id()));
        p
    }

    fn submit_command() -> Command {
        Command::Submit {
            schema: TaskSchema::builder("engine-unit", GroupId::from_index(0))
                .build()
                .expect("valid schema"),
            service_secs: 120.0,
        }
    }

    fn mutate(tx: &mpsc::Sender<Msg>, command: Command) -> Reply {
        let (rtx, rrx) = mpsc::channel();
        tx.send(Msg::Mutate {
            command,
            reply: rtx,
        })
        .expect("engine alive");
        rrx.recv().expect("reply")
    }

    fn query(tx: &mpsc::Sender<Msg>, q: Query) -> Reply {
        let (rtx, rrx) = mpsc::channel();
        tx.send(Msg::Query {
            query: q,
            reply: rtx,
        })
        .expect("engine alive");
        rrx.recv().expect("reply")
    }

    fn spawn(journal: PathBuf) -> (mpsc::Sender<Msg>, std::thread::JoinHandle<()>) {
        let (engine, _) = Engine::open(EngineConfig {
            journal,
            platform: PlatformConfig::default(),
            clock: ClockMode::Logical,
        })
        .expect("opens");
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || engine.run(&rx));
        (tx, handle)
    }

    #[test]
    fn restart_byte_reproduces_transition_log() {
        let path = temp_journal("replay");
        std::fs::remove_file(&path).ok();
        let (tx, handle) = spawn(path.clone());
        for _ in 0..4 {
            assert!(matches!(mutate(&tx, submit_command()), Reply::Ok(_)));
        }
        assert!(matches!(
            mutate(&tx, Command::Advance { secs: 3600.0 }),
            Reply::Ok(_)
        ));
        assert!(matches!(
            mutate(
                &tx,
                Command::Reserve {
                    gpus: 32,
                    from_secs: 7200.0,
                    until_secs: 10800.0
                }
            ),
            Reply::Ok(_)
        ));
        let Reply::Ok(Json::Str(before)) = query(&tx, Query::Transitions) else {
            panic!("transitions query failed");
        };
        assert!(!before.is_empty());
        tx.send(Msg::Stop).expect("send stop");
        handle.join().expect("engine exits");

        // Restart: recovery must byte-reproduce the transition log.
        let (tx, handle) = spawn(path.clone());
        let Reply::Ok(Json::Str(after)) = query(&tx, Query::Transitions) else {
            panic!("transitions query failed after restart");
        };
        assert_eq!(before, after, "recovered transition log differs");
        // And the restarted engine keeps accepting work, seq continuing.
        let Reply::Ok(v) = mutate(&tx, submit_command()) else {
            panic!("post-recovery submit failed");
        };
        assert_eq!(v.get("seq").and_then(Json::as_u64), Some(6));
        tx.send(Msg::Stop).expect("send stop");
        handle.join().expect("engine exits");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejected_commands_are_not_journalled() {
        let path = temp_journal("rejects");
        std::fs::remove_file(&path).ok();
        let (tx, handle) = spawn(path.clone());
        let reply = mutate(
            &tx,
            Command::Cancel {
                job: tacc_workload::JobId::from_value(999),
            },
        );
        let Reply::Err { kind, .. } = reply else {
            panic!("expected error");
        };
        assert_eq!(kind, "unknown-job");
        let Reply::Ok(stats) = query(&tx, Query::JournalStats) else {
            panic!("stats query failed");
        };
        assert_eq!(stats.get("appended").and_then(Json::as_u64), Some(0));
        tx.send(Msg::Stop).expect("send stop");
        handle.join().expect("engine exits");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn queries_observe_batch_order() {
        let path = temp_journal("order");
        std::fs::remove_file(&path).ok();
        let (tx, handle) = spawn(path.clone());
        let submitted = mutate(&tx, submit_command());
        let Reply::Ok(v) = submitted else {
            panic!("submit failed");
        };
        let job = v.get("job").and_then(Json::as_u64).expect("job id");
        let Reply::Ok(status) = query(&tx, Query::Status { job }) else {
            panic!("status should see the job submitted before it");
        };
        assert_eq!(status.get("job").and_then(Json::as_u64), Some(job));
        let Reply::Ok(info) = query(&tx, Query::Info) else {
            panic!("info failed");
        };
        assert_eq!(info.get("jobs").and_then(Json::as_u64), Some(1));
        tx.send(Msg::Stop).expect("send stop");
        handle.join().expect("engine exits");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_expose_taccd_series() {
        let path = temp_journal("metrics");
        std::fs::remove_file(&path).ok();
        let (tx, handle) = spawn(path.clone());
        assert!(matches!(mutate(&tx, submit_command()), Reply::Ok(_)));
        let Reply::Ok(Json::Str(text)) = query(&tx, Query::Metrics) else {
            panic!("metrics query failed");
        };
        assert!(text.contains("tacc_taccd_journal_frames_total 1"));
        assert!(text.contains("tacc_taccd_journal_fsyncs_total"));
        assert!(text.contains("tacc_core_jobs_submitted_total"));
        tx.send(Msg::Stop).expect("send stop");
        handle.join().expect("engine exits");
        std::fs::remove_file(&path).ok();
    }
}
