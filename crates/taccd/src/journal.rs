//! The single-writer write-ahead journal.
//!
//! One file, a sequence of checksummed frames ([`tacc_core::wire`]):
//! a genesis frame carrying the protocol version and platform seed,
//! then one frame per accepted [`CommandRecord`], each a single JSON
//! line. Appends are buffered and durability is batched: the engine
//! appends every valid command of a batch, then calls [`Journal::sync`]
//! once (group commit) before acknowledging any of them — one `fsync`
//! amortized over the whole batch.
//!
//! Recovery reads frames until the first torn or corrupt one, keeps the
//! longest valid prefix, reports what it dropped (loudly — torn tails
//! are counted, logged and surfaced in `tacc_taccd_torn_frames_total`),
//! and truncates the file so the next append continues from a clean
//! boundary.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use tacc_core::wire::{self, Json};
use tacc_core::CommandRecord;

/// Why the journal could not be opened, recovered or appended to.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The genesis frame exists but names a different protocol version.
    ProtocolMismatch {
        /// Version found in the genesis frame.
        found: u64,
        /// Version this daemon speaks.
        expected: u64,
    },
    /// The genesis frame is intact JSON but not a genesis frame.
    BadGenesis(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::ProtocolMismatch { found, expected } => write!(
                f,
                "journal protocol v{found} does not match daemon protocol v{expected}"
            ),
            JournalError::BadGenesis(why) => write!(f, "bad journal genesis frame: {why}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// What recovery found in an existing journal file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Intact command frames recovered (excludes the genesis frame).
    pub frames: u64,
    /// Bytes of the longest valid prefix (frames kept).
    pub valid_bytes: u64,
    /// Bytes dropped from the torn tail (0 for a clean journal).
    pub torn_bytes: u64,
    /// Human-readable description of the tear, when there was one.
    pub torn_reason: Option<String>,
}

impl RecoveryReport {
    /// True when the journal ended mid-frame or with a corrupt frame.
    pub fn torn(&self) -> bool {
        self.torn_bytes > 0
    }
}

/// The write-ahead journal: an append-only file of checksummed frames,
/// owned by exactly one engine thread (single writer by construction —
/// and by the `single-writer` lint rule on [`Journal::append_frame`]).
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    /// Frames appended since open (journal side of the fsync-batching
    /// policy; the engine reads these through [`Journal::stats`]).
    appended: u64,
    /// `fsync` calls issued.
    syncs: u64,
    /// Appended-but-not-yet-synced frame count.
    dirty: u64,
}

/// Counters the engine exports as `tacc_taccd_journal_*` metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalStats {
    /// Frames appended since open.
    pub appended: u64,
    /// `fsync` calls issued since open.
    pub syncs: u64,
    /// Frames appended but not yet covered by an `fsync`.
    pub dirty: u64,
}

fn genesis_payload(seed: u64) -> String {
    wire::obj(vec![
        ("genesis", Json::Num(wire::PROTOCOL_VERSION as f64)),
        ("seed", Json::Num(seed as f64)),
    ])
    .to_string()
}

impl Journal {
    /// Creates a fresh journal at `path` (truncating any existing file)
    /// and writes the genesis frame.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failure.
    pub fn create(path: &Path, seed: u64) -> Result<Journal, JournalError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut journal = Journal {
            file,
            path: path.to_owned(),
            appended: 0,
            syncs: 0,
            dirty: 0,
        };
        let genesis = genesis_payload(seed);
        journal
            .file
            .write_all(&wire::encode_frame(genesis.as_bytes()))?;
        journal.file.sync_data()?;
        journal.syncs += 1;
        Ok(journal)
    }

    /// Opens an existing journal, validates the genesis frame, recovers
    /// the longest valid prefix of command frames, truncates any torn
    /// tail, and returns the recovered records alongside a report.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failure, `ProtocolMismatch` /
    /// `BadGenesis` when the genesis frame is intact but wrong. A torn
    /// or missing genesis frame is `BadGenesis` too: there is no valid
    /// prefix to keep.
    pub fn recover(
        path: &Path,
        expected_seed: u64,
    ) -> Result<(Journal, Vec<CommandRecord>, RecoveryReport), JournalError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        // Genesis frame first.
        let (genesis, genesis_len) =
            wire::decode_frame(&bytes).map_err(|e| JournalError::BadGenesis(e.to_string()))?;
        let genesis_text = std::str::from_utf8(genesis)
            .map_err(|_| JournalError::BadGenesis("genesis is not UTF-8".to_owned()))?;
        let genesis_json =
            wire::parse(genesis_text).map_err(|e| JournalError::BadGenesis(e.to_string()))?;
        let found = genesis_json
            .get("genesis")
            .and_then(Json::as_u64)
            .ok_or_else(|| JournalError::BadGenesis("missing 'genesis' version".to_owned()))?;
        if found != wire::PROTOCOL_VERSION {
            return Err(JournalError::ProtocolMismatch {
                found,
                expected: wire::PROTOCOL_VERSION,
            });
        }
        if let Some(seed) = genesis_json.get("seed").and_then(Json::as_u64) {
            if seed != expected_seed {
                return Err(JournalError::BadGenesis(format!(
                    "journal was written for platform seed {seed}, daemon configured with {expected_seed}"
                )));
            }
        }

        // Command frames: longest valid prefix.
        let mut records = Vec::new();
        let mut offset = genesis_len;
        let mut report = RecoveryReport::default();
        loop {
            if offset == bytes.len() {
                break; // clean end
            }
            match wire::decode_frame(&bytes[offset..]) {
                Ok((payload, used)) => {
                    // A frame that decodes but does not parse as a record
                    // is corruption past the checksum — stop here too.
                    let parsed = std::str::from_utf8(payload)
                        .map_err(|_| "frame payload is not UTF-8".to_owned())
                        .and_then(|text| {
                            wire::parse(text)
                                .map_err(|e| e.to_string())
                                .and_then(|v| CommandRecord::from_json(&v))
                        });
                    match parsed {
                        Ok(record) => {
                            records.push(record);
                            offset += used;
                        }
                        Err(why) => {
                            report.torn_reason =
                                Some(format!("unparseable frame at byte {offset}: {why}"));
                            break;
                        }
                    }
                }
                Err(e) => {
                    report.torn_reason = Some(format!("torn frame at byte {offset}: {e}"));
                    break;
                }
            }
        }
        report.frames = records.len() as u64;
        report.valid_bytes = offset as u64;
        report.torn_bytes = (bytes.len() - offset) as u64;

        // Truncate the torn tail so appends restart from a clean frame
        // boundary.
        if report.torn_bytes > 0 {
            file.set_len(offset as u64)?;
        }
        file.seek(SeekFrom::Start(offset as u64))?;

        Ok((
            Journal {
                file,
                path: path.to_owned(),
                appended: 0,
                syncs: 0,
                dirty: 0,
            },
            records,
            report,
        ))
    }

    /// Appends one command record as a checksummed frame. **Not**
    /// durable until the next [`Journal::sync`] — the engine batches
    /// appends and syncs once per batch before acknowledging.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failure.
    pub fn append_frame(&mut self, record: &CommandRecord) -> Result<(), JournalError> {
        let payload = record.to_json().to_string();
        self.file
            .write_all(&wire::encode_frame(payload.as_bytes()))?;
        self.appended += 1;
        self.dirty += 1;
        Ok(())
    }

    /// Forces everything appended so far to stable storage (the group
    /// commit point).
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failure.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        if self.dirty == 0 {
            return Ok(());
        }
        self.file.sync_data()?;
        self.syncs += 1;
        self.dirty = 0;
        Ok(())
    }

    /// Append/sync counters for the `tacc_taccd_journal_*` metrics.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            appended: self.appended,
            syncs: self.syncs,
            dirty: self.dirty,
        }
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacc_core::Command;

    fn record(seq: u64) -> CommandRecord {
        CommandRecord {
            seq,
            at_secs: seq as f64 * 0.5,
            command: Command::Advance { secs: 1.0 },
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("taccd-journal-test-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn create_append_recover_round_trip() {
        let path = temp_path("round-trip");
        {
            let mut j = Journal::create(&path, 42).expect("creates");
            for seq in 0..10 {
                j.append_frame(&record(seq)).expect("appends");
            }
            j.sync().expect("syncs");
            assert_eq!(j.stats().appended, 10);
            assert_eq!(j.stats().dirty, 0);
        }
        let (_j, records, report) = Journal::recover(&path, 42).expect("recovers");
        assert_eq!(records.len(), 10);
        assert!(!report.torn());
        assert_eq!(report.frames, 10);
        for (seq, r) in records.iter().enumerate() {
            assert_eq!(r.seq, seq as u64);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_recovers_longest_prefix() {
        let path = temp_path("torn");
        {
            let mut j = Journal::create(&path, 42).expect("creates");
            for seq in 0..5 {
                j.append_frame(&record(seq)).expect("appends");
            }
            j.sync().expect("syncs");
        }
        // Tear the last frame by dropping its final 3 bytes.
        let len = std::fs::metadata(&path).expect("meta").len();
        let f = OpenOptions::new().write(true).open(&path).expect("opens");
        f.set_len(len - 3).expect("truncates");
        drop(f);

        let (mut j, records, report) = Journal::recover(&path, 42).expect("recovers");
        assert_eq!(records.len(), 4, "last frame was torn");
        assert!(report.torn());
        assert!(report
            .torn_reason
            .as_deref()
            .unwrap_or("")
            .contains("torn frame"));
        // The file was truncated to the valid prefix; appends continue
        // cleanly from there.
        j.append_frame(&record(99)).expect("appends after recovery");
        j.sync().expect("syncs");
        drop(j);
        let (_j, records, report) = Journal::recover(&path, 42).expect("re-recovers");
        assert_eq!(records.len(), 5);
        assert_eq!(records[4].seq, 99);
        assert!(!report.torn());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn seed_and_protocol_mismatches_are_typed() {
        let path = temp_path("mismatch");
        {
            Journal::create(&path, 42).expect("creates");
        }
        match Journal::recover(&path, 43) {
            Err(JournalError::BadGenesis(why)) => assert!(why.contains("seed")),
            other => panic!("expected BadGenesis, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
