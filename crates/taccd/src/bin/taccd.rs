//! `taccd` — the service daemon binary.
//!
//! ```text
//! taccd --socket /tmp/taccd.sock --journal /tmp/taccd.journal [--clock logical|wall]
//! ```
//!
//! Starts the daemon, prints one status line (including the recovery
//! report when an existing journal was replayed), and serves until
//! SIGTERM/SIGINT kills the process. Durability is the journal's
//! business: killing this process at any point — `kill -9` included —
//! loses nothing that was acknowledged.

#![allow(clippy::print_stdout)]

use std::path::PathBuf;
use std::process::ExitCode;

use tacc_core::PlatformConfig;
use tacc_taccd::{ClockMode, Daemon, DaemonConfig, EngineConfig};

fn usage() -> ExitCode {
    println!("usage: taccd --socket PATH --journal PATH [--clock logical|wall] [--seed N]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut socket: Option<PathBuf> = None;
    let mut journal: Option<PathBuf> = None;
    let mut clock = ClockMode::Logical;
    let mut seed: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = it.next().map(PathBuf::from),
            "--journal" => journal = it.next().map(PathBuf::from),
            "--clock" => match it.next().map(String::as_str) {
                Some("logical") => clock = ClockMode::Logical,
                Some("wall") => clock = ClockMode::Wall,
                _ => return usage(),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = Some(s),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let (Some(socket), Some(journal)) = (socket, journal) else {
        return usage();
    };

    let mut platform = PlatformConfig::default();
    if let Some(seed) = seed {
        platform.seed = seed;
    }
    let config = DaemonConfig {
        socket,
        engine: EngineConfig {
            journal,
            platform,
            clock,
        },
    };
    match Daemon::start(config) {
        Ok((daemon, report)) => {
            match &report {
                Some(r) if r.torn() => println!(
                    "taccd: recovered {} frames ({} bytes), dropped torn tail of {} bytes: {}",
                    r.frames,
                    r.valid_bytes,
                    r.torn_bytes,
                    r.torn_reason.as_deref().unwrap_or("unknown tear")
                ),
                Some(r) => println!(
                    "taccd: recovered {} frames ({} bytes), journal clean",
                    r.frames, r.valid_bytes
                ),
                None => println!("taccd: fresh journal created"),
            }
            println!("taccd: serving on {}", daemon.socket().display());
            // Serve until the process is killed. The daemon's threads do
            // all the work; this thread just parks forever.
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("taccd: failed to start: {e}");
            ExitCode::FAILURE
        }
    }
}
