//! The threaded front door: a Unix-socket listener accepting concurrent
//! `tcloud` clients, one thread per connection, all funneling into the
//! single-writer [`Engine`] channel. Concurrency lives here and only
//! here — the deterministic core below is untouched by it (and the
//! concurrency lint family keeps it that way: `taccd` is the one crate
//! exempted by design).
//!
//! ## Socket protocol
//!
//! Requests and responses are wire frames ([`tacc_core::wire`]), one
//! JSON object per frame:
//!
//! ```text
//! → {"v":1,"hello":true}
//! ← {"ok":{"protocol":1,"server":"taccd"}}
//! → {"v":1,"mutate":{"kind":"submit","service_secs":...,"schema":{...}}}
//! ← {"ok":{"seq":0,"at_secs":0,"outcome":"submitted","job":0}}
//! → {"v":1,"query":{"kind":"status","job":0}}
//! ← {"ok":{"job":0,"state":"Running",...}}  |  {"err":{"kind":"...","message":"..."}}
//! ```
//!
//! A request naming any other protocol version is answered with
//! `version-mismatch` and the connection stays usable; a frame that
//! fails its checksum cannot be resynchronized, so the connection is
//! answered with `malformed-frame` and closed.

use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use tacc_core::wire::{self, obj, Json};
use tacc_core::Command;

use crate::engine::{Engine, EngineConfig, EngineInitError, Msg, Query, Reply};
use crate::journal::RecoveryReport;

/// Daemon configuration: where to listen plus the engine beneath.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Unix socket path. Any stale socket file (e.g. after `kill -9`)
    /// is removed before binding.
    pub socket: PathBuf,
    /// Engine (journal + platform + clock) configuration.
    pub engine: EngineConfig,
}

/// Why the daemon failed to start.
#[derive(Debug)]
pub enum DaemonError {
    /// The engine (journal recovery/replay) failed.
    Engine(EngineInitError),
    /// Binding the Unix socket failed.
    Bind(std::io::Error),
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Engine(e) => write!(f, "engine init failed: {e}"),
            DaemonError::Bind(e) => write!(f, "socket bind failed: {e}"),
        }
    }
}

impl std::error::Error for DaemonError {}

impl From<EngineInitError> for DaemonError {
    fn from(e: EngineInitError) -> Self {
        DaemonError::Engine(e)
    }
}

/// A running daemon: the engine thread, the accept thread, and the
/// per-connection threads they spawn.
#[derive(Debug)]
pub struct Daemon {
    socket: PathBuf,
    engine_tx: Sender<Msg>,
    engine_handle: Option<JoinHandle<()>>,
    accept_handle: Option<JoinHandle<()>>,
    stopping: Arc<AtomicBool>,
}

impl Daemon {
    /// Opens the engine (recovering any existing journal), binds the
    /// socket, and starts serving. Returns the recovery report when an
    /// existing journal was replayed.
    ///
    /// # Errors
    ///
    /// [`DaemonError`] when the journal cannot be recovered or the
    /// socket cannot be bound.
    pub fn start(config: DaemonConfig) -> Result<(Daemon, Option<RecoveryReport>), DaemonError> {
        let (engine, report) = Engine::open(config.engine)?;
        let connected = engine.registry().gauge("tacc_taccd_connected_clients", &[]);

        // A daemon killed with SIGKILL leaves its socket file behind;
        // binding over it needs the stale file gone first.
        if config.socket.exists() {
            std::fs::remove_file(&config.socket).map_err(DaemonError::Bind)?;
        }
        let listener = UnixListener::bind(&config.socket).map_err(DaemonError::Bind)?;

        let (tx, rx) = mpsc::channel();
        let engine_handle = std::thread::spawn(move || engine.run(&rx));

        let stopping = Arc::new(AtomicBool::new(false));
        let accept_tx = tx.clone();
        let accept_stop = Arc::clone(&stopping);
        let accept_handle = std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else {
                    continue; // a failed accept poisons nothing
                };
                let conn_tx = accept_tx.clone();
                let conn_gauge = connected.clone();
                workers.push(std::thread::spawn(move || {
                    conn_gauge.add(1.0);
                    serve_connection(stream, &conn_tx);
                    conn_gauge.add(-1.0);
                }));
                workers.retain(|w| !w.is_finished());
            }
            for w in workers {
                let _ = w.join();
            }
        });

        Ok((
            Daemon {
                socket: config.socket,
                engine_tx: tx,
                engine_handle: Some(engine_handle),
                accept_handle: Some(accept_handle),
                stopping,
            },
            report,
        ))
    }

    /// The socket path clients connect to.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Stops the daemon: closes the listener, drains the engine (final
    /// group commit), and removes the socket file. Idempotent.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // `incoming()` blocks in accept(2); a self-connection wakes it so
        // it can observe the stop flag.
        let _ = UnixStream::connect(&self.socket);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let _ = self.engine_tx.send(Msg::Stop);
        if let Some(h) = self.engine_handle.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reads one frame from the stream. `Ok(None)` on clean EOF before a
/// header; any mid-frame failure is an error string (the connection
/// cannot be resynchronized after one).
fn read_frame(stream: &mut UnixStream) -> Result<Option<Vec<u8>>, String> {
    let mut header = [0u8; 8];
    match stream.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(format!("read error: {e}")),
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    if len > wire::MAX_FRAME_LEN {
        return Err(format!("frame length {len} exceeds cap"));
    }
    let expected = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    let mut payload = vec![0u8; len];
    stream
        .read_exact(&mut payload)
        .map_err(|e| format!("short frame payload: {e}"))?;
    let actual = wire::crc32(&payload);
    if actual != expected {
        return Err(format!(
            "frame checksum mismatch: header {expected:#010x}, payload {actual:#010x}"
        ));
    }
    Ok(Some(payload))
}

fn write_response(stream: &mut UnixStream, response: &Json) -> bool {
    let payload = response.to_string();
    stream
        .write_all(&wire::encode_frame(payload.as_bytes()))
        .is_ok()
}

fn err_json(kind: &str, message: &str) -> Json {
    obj(vec![(
        "err",
        obj(vec![
            ("kind", Json::Str(kind.to_owned())),
            ("message", Json::Str(message.to_owned())),
        ]),
    )])
}

fn ok_json(payload: Json) -> Json {
    obj(vec![("ok", payload)])
}

/// One parsed client request.
enum Request {
    Hello,
    Mutate(Command),
    Query(Query),
}

fn parse_request(payload: &[u8]) -> Result<Request, (String, String)> {
    let text = std::str::from_utf8(payload).map_err(|_| {
        (
            "malformed-frame".to_owned(),
            "payload is not UTF-8".to_owned(),
        )
    })?;
    let value = wire::parse(text).map_err(|e| ("malformed-frame".to_owned(), e.to_string()))?;
    let v = value
        .get("v")
        .and_then(Json::as_u64)
        .ok_or_else(|| ("malformed-frame".to_owned(), "missing 'v' field".to_owned()))?;
    if v != wire::PROTOCOL_VERSION {
        return Err((
            "version-mismatch".to_owned(),
            format!(
                "client speaks protocol v{v}, daemon speaks v{}",
                wire::PROTOCOL_VERSION
            ),
        ));
    }
    if value.get("hello").is_some() {
        return Ok(Request::Hello);
    }
    if let Some(cmd) = value.get("mutate") {
        let command = Command::from_json(cmd).map_err(|e| ("malformed-command".to_owned(), e))?;
        return Ok(Request::Mutate(command));
    }
    if let Some(q) = value.get("query") {
        return parse_query(q).map(Request::Query);
    }
    Err((
        "malformed-frame".to_owned(),
        "request has none of 'hello', 'mutate', 'query'".to_owned(),
    ))
}

fn parse_query(q: &Json) -> Result<Query, (String, String)> {
    let kind = q
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| ("malformed-query".to_owned(), "missing 'kind'".to_owned()))?;
    let job = || {
        q.get("job")
            .and_then(Json::as_u64)
            .ok_or_else(|| ("malformed-query".to_owned(), "missing 'job'".to_owned()))
    };
    Ok(match kind {
        "status" => Query::Status { job: job()? },
        "list" => Query::List,
        "events" => Query::Events { job: job()? },
        "info" => Query::Info,
        "metrics" => Query::Metrics,
        "transitions" => Query::Transitions,
        "journal" => Query::JournalStats,
        other => {
            return Err((
                "malformed-query".to_owned(),
                format!("unknown query kind '{other}'"),
            ))
        }
    })
}

/// Serves one connection until EOF or an unrecoverable framing error.
fn serve_connection(mut stream: UnixStream, engine: &Sender<Msg>) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean EOF
            Err(why) => {
                // Framing broke: answer once, then drop the connection.
                let _ = write_response(&mut stream, &err_json("malformed-frame", &why));
                return;
            }
        };
        let response = match parse_request(&payload) {
            Err((kind, message)) => err_json(&kind, &message),
            Ok(Request::Hello) => ok_json(obj(vec![
                ("protocol", Json::Num(wire::PROTOCOL_VERSION as f64)),
                ("server", Json::Str("taccd".to_owned())),
            ])),
            Ok(Request::Mutate(command)) => {
                let (rtx, rrx) = mpsc::channel();
                if engine
                    .send(Msg::Mutate {
                        command,
                        reply: rtx,
                    })
                    .is_err()
                {
                    err_json("daemon-stopping", "engine is shutting down")
                } else {
                    match rrx.recv() {
                        Ok(reply) => reply_json(reply),
                        Err(_) => err_json("daemon-stopping", "engine dropped the request"),
                    }
                }
            }
            Ok(Request::Query(query)) => {
                let (rtx, rrx) = mpsc::channel();
                if engine.send(Msg::Query { query, reply: rtx }).is_err() {
                    err_json("daemon-stopping", "engine is shutting down")
                } else {
                    match rrx.recv() {
                        Ok(reply) => reply_json(reply),
                        Err(_) => err_json("daemon-stopping", "engine dropped the request"),
                    }
                }
            }
        };
        if !write_response(&mut stream, &response) {
            return; // client went away mid-reply
        }
    }
}

fn reply_json(reply: Reply) -> Json {
    match reply {
        Reply::Ok(payload) => ok_json(payload),
        Reply::Err { kind, message } => err_json(&kind, &message),
    }
}
