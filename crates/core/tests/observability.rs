//! End-to-end guarantees of the span/goodput observability layer:
//!
//! * timelines reconstructed from the exported transition JSONL are
//!   byte-identical to the live ones (the fold is a pure function of
//!   the stream);
//! * the span and badput conservation laws hold on a real campus run,
//!   under exact dyadic-rational arithmetic;
//! * the simulation report — goodput decomposition included — is
//!   sim-time-only: strict equality across repeated builds, and a
//!   wall-clock-free report round-trips byte-identically through the
//!   JSON serializer.

use std::collections::BTreeMap;

use tacc_core::{Platform, PlatformConfig, SimulationReport};
use tacc_obs::{goodput_conservation, span_conservation, GoodputReport, JobGoodputInput, SpanBook};
use tacc_workload::{GenParams, JobId, TraceGenerator};

fn run_platform() -> Platform {
    // Faults on so resumed runs pay checkpoint restores and the
    // Recovering/Restoring phases actually appear.
    let config = PlatformConfig {
        node_mtbf_secs: Some(30_000.0),
        ..PlatformConfig::default()
    };
    let mut p = Platform::new(config);
    let trace = TraceGenerator::new(GenParams::default(), 11).generate_days(0.5);
    p.load_trace(&trace);
    p.run_until_idle();
    p
}

fn goodput_inputs(p: &Platform) -> BTreeMap<JobId, JobGoodputInput> {
    p.job_ids()
        .into_iter()
        .map(|id| {
            let job = p.job(id).expect("listed id exists");
            (
                id,
                JobGoodputInput {
                    gpus: f64::from(job.schema().total_gpus()),
                    useful_secs: (job.service_secs() - job.remaining_secs()).max(0.0),
                },
            )
        })
        .collect()
}

#[test]
fn timelines_replay_byte_identically_from_exported_transitions() {
    let p = run_platform();
    assert_eq!(
        p.transitions_dropped(),
        0,
        "the transition ring must retain the whole run for replay"
    );
    let horizon = p.now().as_secs().max(1e-9);
    let live = p.timelines_jsonl();
    assert!(live.contains("\"phase\":\"Running\""));
    assert!(live.contains("\"phase\":\"Queued\""));

    let rebuilt = SpanBook::from_transitions_jsonl(&p.transitions_jsonl(), p.span_book().config())
        .expect("exported stream parses back");
    assert_eq!(rebuilt.ignored(), 0, "the engine only exports legal edges");
    assert_eq!(rebuilt.observed(), p.span_book().observed());
    assert_eq!(
        live,
        rebuilt.to_jsonl(horizon),
        "replayed timelines must be byte-identical"
    );
}

#[test]
fn conservation_laws_hold_on_a_real_run() {
    let p = run_platform();
    let horizon = p.now().as_secs().max(1e-9);
    span_conservation(p.span_book(), horizon).expect("span partition law");
    goodput_conservation(p.span_book(), horizon, &goodput_inputs(&p))
        .expect("badput itemization law");

    let report = p.goodput();
    assert!((0.0..=1.0).contains(&report.goodput), "{report:?}");
    assert!((0.0..=1.0).contains(&report.availability));
    assert!((0.0..=1.0).contains(&report.throughput_efficiency));
    assert!((0.0..=1.0).contains(&report.badput_fraction));
    for (cause, gpu_secs) in report.badput.items() {
        assert!(gpu_secs >= 0.0, "{cause}: {gpu_secs}");
    }
    // Itemized causes sum to the total by definition.
    let itemized: f64 = report.badput.items().iter().map(|(_, v)| v).sum();
    assert_eq!(itemized, report.badput.total_gpu_secs());
    // The same decomposition is embedded in the simulation report.
    assert_eq!(p.report().goodput_decomposition, report);
}

#[test]
fn goodput_gauges_follow_the_report() {
    let p = run_platform();
    let report = p.goodput();
    let snap = p.metrics();
    assert_eq!(snap.gauge("tacc_obs_goodput_ratio"), Some(report.goodput));
    assert_eq!(
        snap.gauge("tacc_obs_goodput_availability"),
        Some(report.availability)
    );
    assert_eq!(
        snap.gauge("tacc_obs_goodput_throughput_efficiency"),
        Some(report.throughput_efficiency)
    );
    assert_eq!(
        snap.gauge("tacc_obs_goodput_badput_ratio"),
        Some(report.badput_fraction)
    );
    // Nothing dropped in this run; the counters exist and read zero.
    assert_eq!(snap.counter("tacc_obs_dropped_events_total"), Some(0));
    assert_eq!(snap.counter("tacc_obs_dropped_transitions_total"), Some(0));
}

#[test]
fn repeated_reports_are_strictly_equal() {
    let p = run_platform();
    // goodput() refreshes gauges but must not perturb the report.
    let a = p.report();
    let _ = p.goodput();
    let b = p.report();
    assert_eq!(a, b);
}

/// A report with its only wall-clock-measured field cleared round-trips
/// byte-identically through the JSON serializer: every remaining field
/// is sim-time data with a canonical rendering.
#[test]
fn wall_clock_free_report_roundtrips_byte_identically() {
    if !tacc_workload::serde_json_functional() {
        // Offline build sandboxes substitute a typecheck-only
        // serde_json stub; the goodput JSON path is covered by the
        // hand-rolled `GoodputReport::to_json` instead.
        let p = run_platform();
        let report = p.goodput();
        assert_eq!(report.to_json(), p.goodput().to_json());
        return;
    }
    let p = run_platform();
    let mut report = p.report();
    report.round_latency = Default::default();
    let json = serde_json::to_string(&report).expect("serializes");
    let back: SimulationReport = serde_json::from_str(&json).expect("parses");
    assert_eq!(back, report, "round trip preserves strict equality");
    assert_eq!(
        serde_json::to_string(&back).expect("serializes"),
        json,
        "second rendering must be byte-identical"
    );
    // The embedded goodput decomposition survives the trip too.
    let goodput: GoodputReport = serde_json::from_str(
        &serde_json::to_string(&report.goodput_decomposition).expect("serializes"),
    )
    .expect("parses");
    assert_eq!(goodput, report.goodput_decomposition);
}
