//! End-to-end platform tests: full job lifecycles through admission,
//! scheduling, execution, faults, and reporting. These were the
//! `platform.rs` unit tests before the core was split into lifecycle
//! modules; they exercise only the public API.

use tacc_cluster::{ClusterSpec, GpuModel, ResourceVec};
use tacc_core::{Platform, PlatformConfig};
use tacc_exec::FailoverPolicy;
use tacc_sched::QuotaMode;
use tacc_sim::SimTime;
use tacc_workload::{GenParams, GroupId, JobId, JobState, QosClass, TaskSchema, TraceGenerator};

fn tiny_config() -> PlatformConfig {
    PlatformConfig {
        cluster: ClusterSpec::uniform(1, 2, GpuModel::A100, 8),
        roster: tacc_workload::GroupRoster::campus_default(16),
        ..PlatformConfig::default()
    }
}

fn one_gpu_schema(group: usize) -> TaskSchema {
    TaskSchema::builder("unit", GroupId::from_index(group))
        .resources(ResourceVec::gpus_only(1))
        .est_duration_secs(600.0)
        .build()
        .expect("valid")
}

#[test]
fn single_job_full_lifecycle() {
    let mut p = Platform::new(tiny_config());
    let id = p.submit_schema(one_gpu_schema(0), 600.0);
    p.run_until_idle();
    let job = p.job(id).expect("exists");
    assert_eq!(job.state(), JobState::Completed);
    // JCT = provisioning + service (no queueing, no contention, small
    // overheads); sanity: between service and service + 10 minutes.
    let jct = job.jct_secs().expect("completed");
    assert!(jct >= 600.0, "jct {jct}");
    assert!(jct < 1200.0, "jct {jct}");
    let log = p.job_log(id);
    assert!(log.iter().any(|(_, m)| m == "completed"));
    assert!(p.cluster().check_invariants());
    assert_eq!(p.cluster().free_gpus(), 16);
}

#[test]
fn report_accounts_all_jobs() {
    let mut p = Platform::new(tiny_config());
    let trace = TraceGenerator::new(
        GenParams {
            roster: tacc_workload::GroupRoster::campus_default(16),
            peak_jobs_per_hour: 6.0,
            ..GenParams::default()
        },
        3,
    )
    .generate_days(0.5);
    let report = p.run_trace(&trace);
    assert_eq!(report.submitted, trace.len());
    assert_eq!(
        report.completed + (report.failed + report.rejected + report.cancelled) as usize,
        trace.len()
    );
    assert!(report.mean_utilization > 0.0);
    assert!(report.jct.count() == report.completed);
}

#[test]
fn determinism_across_runs() {
    let trace = TraceGenerator::new(GenParams::default(), 9).generate_days(0.2);
    let r1 = Platform::new(PlatformConfig::default()).run_trace(&trace);
    let r2 = Platform::new(PlatformConfig::default()).run_trace(&trace);
    assert_eq!(r1.jct.mean(), r2.jct.mean());
    assert_eq!(r1.mean_utilization, r2.mean_utilization);
}

#[test]
fn infeasible_gang_rejected_at_admission() {
    let mut p = Platform::new(tiny_config()); // 2 nodes x 8 GPUs
    let id = p.submit_schema(
        TaskSchema::builder("too-big", GroupId::from_index(0))
            .workers(4)
            .resources(ResourceVec::gpus_only(8))
            .est_duration_secs(600.0)
            .build()
            .expect("valid"),
        600.0,
    );
    p.run_until_idle();
    assert_eq!(p.job(id).expect("exists").state(), JobState::Failed);
    let report = p.report();
    assert_eq!(report.rejected, 1);
    assert!(p.job_log(id).iter().any(|(_, m)| m.contains("rejected")));
}

#[test]
fn cancel_queued_job() {
    let mut p = Platform::new(tiny_config());
    // Saturate the 16-GPU cluster with one long gang, then queue a job
    // behind it.
    let filler = TaskSchema::builder("filler", GroupId::from_index(0))
        .workers(2)
        .resources(ResourceVec::gpus_only(8))
        .est_duration_secs(1e6)
        .build()
        .expect("valid");
    p.submit_schema(filler, 1e6);
    p.run_until(SimTime::from_secs(1000.0)); // filler is now running
    let id = p.submit_schema(one_gpu_schema(0), 600.0);
    p.run_until(SimTime::from_secs(3600.0));
    assert_eq!(p.job(id).expect("exists").state(), JobState::Queued);
    assert!(p.cancel_job(id));
    assert_eq!(p.job(id).expect("exists").state(), JobState::Cancelled);
    assert!(!p.cancel_job(id));
}

#[test]
fn over_quota_request_rejected_at_admission() {
    let mut cfg = tiny_config();
    cfg.scheduler.quota = QuotaMode::Static;
    cfg.scheduler.quotas = vec![0; 8]; // no group may run anything
    let mut p = Platform::new(cfg);
    let id = p.submit_schema(one_gpu_schema(0), 600.0);
    p.run_until_idle();
    assert_eq!(p.job(id).expect("exists").state(), JobState::Failed);
    assert_eq!(p.report().rejected, 1);
}

#[test]
fn cancel_running_job_frees_gpus() {
    let mut p = Platform::new(tiny_config());
    let id = p.submit_schema(one_gpu_schema(0), 1e6);
    p.run_until(SimTime::from_secs(7200.0));
    assert_eq!(p.job(id).expect("exists").state(), JobState::Running);
    assert_eq!(p.cluster().free_gpus(), 15);
    assert!(p.cancel_job(id));
    assert_eq!(p.cluster().free_gpus(), 16);
    assert!(p.cluster().check_invariants());
}

#[test]
fn preemption_round_trips_through_requeue() {
    let mut cfg = tiny_config();
    cfg.scheduler.quota = QuotaMode::Borrowing;
    cfg.scheduler.quotas = vec![8, 8];
    cfg.scheduler.group_count = 8;
    let mut p = Platform::new(cfg);
    // Borrower occupies everything.
    let borrower = p.submit_schema(
        TaskSchema::builder("borrower", GroupId::from_index(0))
            .workers(2)
            .resources(ResourceVec::gpus_only(8))
            .qos(QosClass::BestEffort)
            .est_duration_secs(50_000.0)
            .build()
            .expect("valid"),
        50_000.0,
    );
    p.run_until(SimTime::from_secs(3600.0));
    assert_eq!(p.job(borrower).expect("exists").state(), JobState::Running);
    // Owner reclaims.
    let owner = p.submit_schema(
        TaskSchema::builder("owner", GroupId::from_index(1))
            .resources(ResourceVec::gpus_only(8))
            .est_duration_secs(600.0)
            .build()
            .expect("valid"),
        600.0,
    );
    p.run_until_idle();
    let owner_job = p.job(owner).expect("exists");
    assert_eq!(owner_job.state(), JobState::Completed);
    let borrower_job = p.job(borrower).expect("exists");
    assert!(borrower_job.preemptions() >= 1);
    assert_eq!(borrower_job.state(), JobState::Completed);
    assert!(p.cluster().check_invariants());
    assert_eq!(p.cluster().free_gpus(), 16);
}

#[test]
fn drained_node_empties_then_rejoins() {
    let mut p = Platform::new(tiny_config()); // 2 nodes x 8
    let drained = tacc_cluster::NodeId::from_index(0);
    assert!(p.drain_node(drained));
    // A full-cluster-sized stream of 1-GPU jobs lands only on node 1.
    for i in 0..8 {
        p.submit_schema(one_gpu_schema(i % 8), 600.0);
    }
    p.run_until(SimTime::from_secs(300.0));
    let n0 = p.cluster().node(drained).expect("exists");
    assert_eq!(n0.used().gpus, 0, "drained node must stay empty");
    assert!(!n0.is_schedulable());
    // Undraining lets queued/new work use it again.
    assert!(p.undrain_node(drained));
    let id = p.submit_schema(one_gpu_schema(0), 600.0);
    p.run_until_idle();
    assert_eq!(p.job(id).expect("exists").state(), JobState::Completed);
    assert!(p.cluster().check_invariants());
}

#[test]
fn time_slicing_rotates_best_effort_monopolist() {
    let mut cfg = tiny_config();
    cfg.scheduler.time_slice_secs = Some(1800.0);
    let mut p = Platform::new(cfg);
    // A best-effort gang takes the whole 16-GPU cluster for a long run.
    let hog = p.submit_schema(
        TaskSchema::builder("hog", GroupId::from_index(0))
            .workers(2)
            .resources(ResourceVec::gpus_only(8))
            .qos(QosClass::BestEffort)
            .est_duration_secs(40_000.0)
            .build()
            .expect("valid"),
        40_000.0,
    );
    p.run_until(SimTime::from_secs(600.0));
    // A short guaranteed job arrives and must not wait 11 hours.
    let quick = p.submit_schema(
        TaskSchema::builder("quick", GroupId::from_index(1))
            .resources(ResourceVec::gpus_only(8))
            .est_duration_secs(900.0)
            .build()
            .expect("valid"),
        900.0,
    );
    p.run_until_idle();
    let quick_job = p.job(quick).expect("exists");
    assert_eq!(quick_job.state(), JobState::Completed);
    // It started within ~one quantum of the hog's start, not after it.
    assert!(
        quick_job.queueing_delay_secs().expect("ran") < 3600.0,
        "waited {:?}s",
        quick_job.queueing_delay_secs()
    );
    let hog_job = p.job(hog).expect("exists");
    assert_eq!(hog_job.state(), JobState::Completed);
    assert!(hog_job.preemptions() >= 1, "hog must have been rotated");
}

#[test]
fn elastic_job_starts_shrunk_and_runs_longer() {
    let mut p = Platform::new(tiny_config()); // 2 nodes x 8
                                              // Occupy one node for a long time.
    p.submit_schema(
        TaskSchema::builder("filler", GroupId::from_index(0))
            .resources(ResourceVec::gpus_only(8))
            .est_duration_secs(1e6)
            .build()
            .expect("valid"),
        1e6,
    );
    p.run_until(SimTime::from_secs(500.0));
    // An elastic 2x8 gang only finds one node: granted 1 worker and
    // stretched ~2x.
    let id = p.submit_schema(
        TaskSchema::builder("elastic", GroupId::from_index(1))
            .workers(2)
            .resources(ResourceVec::gpus_only(8))
            .qos(QosClass::BestEffort)
            .elastic(true)
            .est_duration_secs(3600.0)
            .build()
            .expect("valid"),
        3600.0,
    );
    p.run_until(SimTime::from_secs(600.0));
    let status = p.job_status(id).expect("exists");
    assert_eq!(status.state, JobState::Running);
    assert_eq!(status.nodes.len(), 1, "granted a single node");
    assert!(p
        .job_log(id)
        .iter()
        .any(|(_, m)| m.contains("elastic: 1/2")));
    // Runtime is ~2x the 3600 s service (plus small overheads).
    p.run_until_idle();
    let job = p.job(id).expect("exists");
    let run_time = job.jct_secs().expect("completed") - job.queueing_delay_secs().expect("started");
    assert!(run_time > 7000.0, "shrunk gang must run ~2x: {run_time}");
    assert!(run_time < 9000.0, "but not much more: {run_time}");
}

#[test]
fn failure_injection_with_failover_still_completes() {
    let mut cfg = tiny_config();
    cfg.node_mtbf_secs = Some(4000.0); // aggressive faults
    cfg.failover = FailoverPolicy::SwitchRuntime;
    let mut p = Platform::new(cfg);
    let id = p.submit_schema(
        TaskSchema::builder("long", GroupId::from_index(0))
            .workers(2)
            .resources(ResourceVec::gpus_only(8))
            .est_duration_secs(20_000.0)
            .build()
            .expect("valid"),
        20_000.0,
    );
    p.run_until_idle();
    let job = p.job(id).expect("exists");
    assert_eq!(job.state(), JobState::Completed);
    let report = p.report();
    assert!(report.faults >= 1, "expected at least one injected fault");
    assert_eq!(report.failovers, report.faults);
    assert!(job.restarts() >= 1);
}

#[test]
fn event_bus_satisfies_conservation() {
    let mut p = Platform::new(tiny_config());
    let trace = TraceGenerator::new(
        GenParams {
            roster: tacc_workload::GroupRoster::campus_default(16),
            peak_jobs_per_hour: 6.0,
            ..GenParams::default()
        },
        7,
    )
    .generate_days(0.5);
    let report = p.run_trace(&trace);
    let records: Vec<_> = p.events().records().cloned().collect();
    let check = tacc_obs::conservation(&records);
    assert!(check.balanced(), "unbalanced: {check:?}");
    assert_eq!(check.submitted, trace.len() as u64);
    assert_eq!(check.completed as usize, report.completed);
    assert_eq!(report.events_recorded as usize, records.len());
    assert_eq!(report.events_dropped, 0);
    if tacc_workload::serde_json_functional() {
        // The JSONL export round-trips losslessly.
        let parsed = tacc_obs::EventBus::parse_jsonl(&p.events().to_jsonl()).expect("valid JSONL");
        assert_eq!(parsed, records);
    }
}

#[test]
fn job_log_is_bounded_and_counts_drops() {
    let mut cfg = tiny_config();
    cfg.log_lines_per_job = 2;
    let mut p = Platform::new(cfg);
    let id = p.submit_schema(one_gpu_schema(0), 600.0);
    p.run_until_idle();
    // The lifecycle emits at least submitted/compiled/queued/started/
    // completed; only the newest two lines survive.
    assert_eq!(p.job_log(id).len(), 2);
    assert!(p.job_log_dropped(id) >= 3);
    assert!(p.job_log(id).iter().any(|(_, m)| m == "completed"));
    // The event bus is bounded separately: full history remains here.
    assert!(p.job_events(id).len() >= 5);
}

#[test]
fn why_explains_a_stuck_job() {
    let mut p = Platform::new(tiny_config());
    let filler = TaskSchema::builder("filler", GroupId::from_index(0))
        .workers(2)
        .resources(ResourceVec::gpus_only(8))
        .est_duration_secs(1e6)
        .build()
        .expect("valid");
    p.submit_schema(filler, 1e6);
    p.run_until(SimTime::from_secs(1000.0));
    let id = p.submit_schema(one_gpu_schema(1), 600.0);
    p.run_until(SimTime::from_secs(2000.0));
    assert_eq!(p.job(id).expect("exists").state(), JobState::Queued);
    let why = p.why(id).expect("known job");
    assert!(why.contains("no feasible placement"), "why: {why}");
    p.run_until_idle();
    let why = p.why(id).expect("known job");
    assert!(why.contains("completed"), "why: {why}");
    assert_eq!(p.why(JobId::from_value(999)), None);
}

#[test]
fn metrics_span_all_layers() {
    let mut p = Platform::new(tiny_config());
    p.submit_schema(one_gpu_schema(0), 600.0);
    p.run_until_idle();
    let snap = p.metrics();
    assert_eq!(snap.counter("tacc_core_jobs_submitted_total"), Some(1));
    assert_eq!(snap.counter("tacc_core_jobs_completed_total"), Some(1));
    assert!(snap.counter("tacc_sched_rounds_total").unwrap_or(0) > 0);
    assert_eq!(snap.counter("tacc_compiler_compilations_total"), Some(1));
    assert_eq!(snap.counter("tacc_exec_plans_total"), Some(1));
    assert_eq!(snap.gauge("tacc_cluster_free_gpus"), Some(16.0));
    let hist = snap
        .histogram("tacc_sched_round_latency_seconds")
        .expect("round latency histogram");
    assert!(hist.count > 0);
    let text = p.metrics_text();
    assert!(text.contains("# TYPE"));
    assert!(text.contains("tacc_core_jobs_submitted_total"));
    assert!(text.contains("tacc_cluster_free_gpus"));
    let report = p.report();
    assert_eq!(Some(report.rounds), snap.counter("tacc_sched_rounds_total"));
    assert!(report.round_latency.count > 0);
    assert!(report.events_recorded >= 5);
}

#[test]
fn failure_injection_without_failover_fails_jobs() {
    let mut cfg = tiny_config();
    cfg.node_mtbf_secs = Some(2000.0);
    cfg.failover = FailoverPolicy::FailJob;
    let mut p = Platform::new(cfg);
    let id = p.submit_schema(
        TaskSchema::builder("doomed", GroupId::from_index(0))
            .workers(2)
            .resources(ResourceVec::gpus_only(8))
            .est_duration_secs(50_000.0)
            .build()
            .expect("valid"),
        50_000.0,
    );
    p.run_until_idle();
    assert_eq!(p.job(id).expect("exists").state(), JobState::Failed);
    assert!(p.report().failed >= 1);
    assert_eq!(p.cluster().free_gpus(), 16);
}
