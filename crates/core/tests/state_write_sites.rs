//! Enforces the lifecycle engine's single-writer invariant textually:
//! production code may mutate a job's state only through
//! `Job::apply_event` (defined in `workload/src/job.rs`), and the only
//! production caller of `apply_event` is `core/src/lifecycle.rs`.
//!
//! A grep over the workspace sources is crude but exactly the right
//! strength: any new write site fails this test by construction, no
//! matter which crate it lands in.

use std::fs;
use std::path::{Path, PathBuf};

/// Repo root, derived from this crate's manifest dir (`crates/core`).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/core sits two levels below the workspace root")
        .to_path_buf()
}

/// All `src/` Rust sources in the workspace (production code only —
/// `tests/` directories and `#[cfg(test)]` modules are harnesses and may
/// drive the engine directly).
fn production_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.join("crates"), root.join("tests").join("src")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "tests") {
                    continue; // integration-test harnesses
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") && path.iter().any(|c| c == "src")
            {
                out.push(path);
            }
        }
    }
    assert!(
        out.len() > 20,
        "source walk looks broken: only {} files",
        out.len()
    );
    out
}

/// Strips everything from the first `#[cfg(test)]` onwards — unit-test
/// modules sit at the bottom of their files in this codebase.
fn without_unit_tests(source: &str) -> &str {
    match source.find("#[cfg(test)]") {
        Some(idx) => &source[..idx],
        None => source,
    }
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
        .replace('\\', "/")
}

/// The raw field write `self.state =` exists only inside `Job` itself.
#[test]
fn job_state_field_is_written_only_in_job_rs() {
    let root = workspace_root();
    let mut writers = Vec::new();
    for path in production_sources(&root) {
        let source = fs::read_to_string(&path).expect("readable source");
        if without_unit_tests(&source).contains("self.state =") {
            writers.push(rel(&root, &path));
        }
    }
    assert_eq!(
        writers,
        vec!["crates/workload/src/job.rs".to_string()],
        "job state must have exactly one raw write site"
    );
}

/// The only production caller of `Job::apply_event` is the lifecycle
/// engine; everything else must go through the platform event loop.
#[test]
fn apply_event_is_called_only_from_the_lifecycle_engine() {
    let root = workspace_root();
    let mut callers = Vec::new();
    for path in production_sources(&root) {
        let source = fs::read_to_string(&path).expect("readable source");
        if without_unit_tests(&source).contains(".apply_event(") {
            callers.push(rel(&root, &path));
        }
    }
    callers.sort();
    assert_eq!(
        callers,
        vec!["crates/core/src/lifecycle.rs".to_string()],
        "apply_event must be driven only by core/src/lifecycle.rs"
    );
}
