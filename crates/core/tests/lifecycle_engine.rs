//! Red-flip harness for the lifecycle engine: prove that an illegal
//! event — the classic stale-token fault arriving *after* a job already
//! completed — is rejected with a typed error, leaves the job untouched,
//! and is surfaced on the event bus and metrics registry.
//!
//! During development this was validated by seeding the exact bug
//! (bypassing the fault token guard so the stale fault reached the
//! engine); the seed is gone, the harness stays. `force_lifecycle_event`
//! plays the role of the buggy caller: it skips the event-loop guards
//! and hands the raw event straight to the engine.

use tacc_cluster::{ClusterSpec, GpuModel, ResourceVec};
use tacc_core::{LifecycleError, Platform, PlatformConfig};
use tacc_workload::{GroupId, JobEvent, JobEventKind, JobState, TaskSchema};

fn tiny_config() -> PlatformConfig {
    PlatformConfig {
        cluster: ClusterSpec::uniform(1, 2, GpuModel::A100, 8),
        roster: tacc_workload::GroupRoster::campus_default(16),
        ..PlatformConfig::default()
    }
}

fn one_gpu_schema() -> TaskSchema {
    TaskSchema::builder("red-flip", GroupId::from_index(0))
        .resources(ResourceVec::gpus_only(1))
        .est_duration_secs(600.0)
        .build()
        .expect("valid")
}

/// A stale node fault delivered after completion must bounce off the
/// transition matrix as a typed [`IllegalTransition`], not corrupt the
/// terminal state.
#[test]
fn stale_fault_after_completion_is_rejected_typed() {
    let mut p = Platform::new(tiny_config());
    let id = p.submit_schema(one_gpu_schema(), 600.0);
    p.run_until_idle();
    assert_eq!(p.job(id).expect("exists").state(), JobState::Completed);
    let transitions_before = p.transitions(id).len();
    assert_eq!(p.illegal_transitions(), 0);

    // The stale fault: a node death notification for a run that already
    // finished. The event loop's run-token guard drops these before they
    // reach the engine; this harness simulates the guard being bypassed.
    let err = p
        .force_lifecycle_event(
            id,
            JobEvent::Fail {
                at_secs: 1e6,
                progress_secs: 0.0,
            },
        )
        .expect_err("completed job must reject a fault");

    // Typed rejection naming the exact attempt.
    let LifecycleError::Illegal(err) = err else {
        panic!("a tracked job must reject via the transition matrix, got {err}");
    };
    assert_eq!(err.from, JobState::Completed);
    assert_eq!(err.event, JobEventKind::Fail);

    // The job is untouched: still completed, JCT intact, no new record.
    let job = p.job(id).expect("exists");
    assert_eq!(job.state(), JobState::Completed);
    assert!(job.jct_secs().is_some());
    assert_eq!(p.transitions(id).len(), transitions_before);

    // The rejection is observable on every channel.
    assert_eq!(p.illegal_transitions(), 1);
    assert_eq!(
        p.metrics().counter("tacc_core_illegal_transitions_total"),
        Some(1)
    );
    assert_eq!(p.events().kind_count("illegal_transition"), 1);
    let rejected = p
        .events()
        .records()
        .find(|r| r.event.kind() == "illegal_transition")
        .expect("bus carries the rejection");
    assert_eq!(rejected.event.job(), id);
    assert_eq!(
        rejected.event.to_string(),
        "illegal transition rejected: fail from state completed"
    );
}

/// An id the platform never tracked is reported as a typed
/// `UnknownJob` — the engine no longer panics on table misses, so the
/// reachable simulation path carries zero panic sites (the
/// `panic-surface` lint gates this).
#[test]
fn unknown_job_is_a_typed_error_not_a_panic() {
    let mut p = Platform::new(tiny_config());
    let bogus = tacc_workload::JobId::from_value(u64::MAX);
    let err = p
        .force_lifecycle_event(bogus, JobEvent::Enqueue)
        .expect_err("untracked id must be rejected");
    assert_eq!(err, LifecycleError::UnknownJob(bogus));
    assert!(err.to_string().contains("not in the platform job table"));
    // An unknown id never reaches the transition matrix: the illegal
    // counter and the bus stay untouched.
    assert_eq!(p.illegal_transitions(), 0);
    assert_eq!(p.events().kind_count("illegal_transition"), 0);
}

/// The transition log records the happy path that led to the terminal
/// state, and stays frozen across rejected events.
#[test]
fn transition_log_survives_rejection_unchanged() {
    let mut p = Platform::new(tiny_config());
    let id = p.submit_schema(one_gpu_schema(), 600.0);
    p.run_until_idle();

    let log = p.transitions(id);
    let path: Vec<(JobState, JobState)> = log.iter().map(|r| (r.from, r.to)).collect();
    assert_eq!(
        path,
        vec![
            // Admission anchors the timeline with a recorded self-loop.
            (JobState::Submitted, JobState::Submitted),
            (JobState::Submitted, JobState::Queued),
            (JobState::Queued, JobState::Running),
            (JobState::Running, JobState::Completed),
        ]
    );
    // Timestamps never regress along the path.
    assert!(log.windows(2).all(|w| w[0].at_secs <= w[1].at_secs));

    let _ = p.force_lifecycle_event(id, JobEvent::Enqueue);
    let _ = p.force_lifecycle_event(id, JobEvent::Start { at_secs: 1e6 });
    assert_eq!(p.transitions(id), log, "rejections must not append records");
    assert_eq!(p.illegal_transitions(), 2);
}

/// Every kind of stale event bounces off a terminal job — and each
/// rejection increments the counters exactly once.
#[test]
fn every_stale_event_kind_is_rejected_on_terminal_job() {
    let mut p = Platform::new(tiny_config());
    let id = p.submit_schema(one_gpu_schema(), 600.0);
    p.run_until_idle();

    let stale = [
        JobEvent::Submit { at_secs: 1e6 },
        JobEvent::Enqueue,
        JobEvent::Start { at_secs: 1e6 },
        JobEvent::Preempt {
            at_secs: 1e6,
            progress_secs: 0.0,
            lost_secs: 0.0,
        },
        JobEvent::Interrupt {
            at_secs: 1e6,
            progress_secs: 0.0,
            lost_secs: 0.0,
        },
        JobEvent::Reject { at_secs: 1e6 },
        JobEvent::Complete { at_secs: 1e6 },
        JobEvent::Fail {
            at_secs: 1e6,
            progress_secs: 0.0,
        },
        JobEvent::Cancel { at_secs: 1e6 },
    ];
    for (i, event) in stale.iter().enumerate() {
        let err = p
            .force_lifecycle_event(id, *event)
            .expect_err("terminal state absorbs everything");
        let LifecycleError::Illegal(err) = err else {
            panic!("a tracked job must reject via the transition matrix, got {err}");
        };
        assert_eq!(err.from, JobState::Completed);
        assert_eq!(p.illegal_transitions(), i as u64 + 1);
    }
    assert_eq!(p.job(id).expect("exists").state(), JobState::Completed);
    assert_eq!(
        p.metrics().counter("tacc_core_illegal_transitions_total"),
        Some(stale.len() as u64)
    );
}
