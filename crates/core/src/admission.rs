//! Admission: the platform front door. Accepts trace/interactive
//! submissions, runs them through the compiler layer, and applies
//! admission control — a gang the hardware can never hold, or a
//! guaranteed request larger than its group's entire quota, is rejected
//! outright (`Submitted → Failed`) instead of queueing forever.

use tacc_obs::{PlatformEvent, RejectReason};
use tacc_sched::TaskRequest;
use tacc_sim::{SimDuration, SimTime};
use tacc_workload::{Job, JobEvent, JobId, TaskSchema};

use crate::platform::{Event, Platform};

impl Platform {
    /// Admits a pending trace record: creates the job, compiles its
    /// schema, and schedules queue entry after the provisioning latency.
    pub(crate) fn do_submit(&mut self, record_idx: usize) -> JobId {
        let now = self.clock.now().as_secs();
        let record = self.pending_records[record_idx].clone();
        let id = JobId::from_value(self.next_job);
        self.next_job += 1;
        let job = Job::new(id, record.schema.clone(), now, record.service_secs);
        self.jobs.push(job);
        // Anchor the job's transition timeline at its submission: a
        // recorded self-loop on `Submitted`, so span reconstruction from
        // the exported stream alone knows when provisioning began.
        let _ = self.apply_lifecycle_event(id, JobEvent::Submit { at_secs: now });
        self.metrics.jobs_submitted.inc();
        self.emit(
            now,
            PlatformEvent::Submitted {
                job: id,
                group: record.schema.group,
                name: record.schema.name.clone(),
            },
        );

        // Layer 2: compile. Provisioning latency delays queue entry.
        let compiled = self
            .compiler
            .compile(&record.schema)
            .expect("trace schemas are pre-validated");
        if let Some(slot) = self.jobs.get_mut(id) {
            slot.runtime = compiled.instruction.runtime;
        }
        self.provisioning_latency_total += compiled.provisioning.latency_secs;
        self.emit(
            now,
            PlatformEvent::Compiled {
                job: id,
                instruction: compiled.instruction.kind.to_string(),
                payload_mb: compiled.provisioning.total_mb,
                transferred_mb: compiled.provisioning.transferred_mb,
                chunk_hits: u64::from(compiled.provisioning.chunk_hits),
                chunk_misses: u64::from(compiled.provisioning.chunk_misses),
                provisioning_secs: compiled.provisioning.latency_secs,
            },
        );
        self.events.schedule(
            SimTime::from_secs(now) + SimDuration::from_secs(compiled.provisioning.latency_secs),
            Event::CompileDone { job: id },
        );
        if let Some(after) = record.cancel_after_secs {
            self.schedule_cancel(id, now, after);
        }
        id
    }

    /// Compilation finished: run admission control, then either reject
    /// the job (`Reject` lifecycle event) or enqueue it with the
    /// scheduler (`Enqueue`).
    pub(crate) fn on_compile_done(&mut self, id: JobId) {
        let now = self.clock.now().as_secs();
        let Some(job) = self.job_ref(id) else {
            return;
        };
        if job.state().is_terminal() {
            return; // cancelled during provisioning
        }
        let schema = job.schema();
        let request = TaskRequest {
            id,
            group: schema.group,
            qos: schema.qos,
            workers: schema.workers,
            per_worker: schema.resources,
            est_secs: schema.est_duration_secs,
            submit_secs: job.submit_secs(),
            elastic: schema.elastic,
        };
        // Admission control: reject outright anything that could never run
        // here — a gang the hardware cannot hold, or a guaranteed request
        // larger than its group's entire quota — instead of queueing it
        // forever.
        let verdict = if !self.gang_feasible(schema) {
            Some(RejectReason::GangNeverFits)
        } else if !self.scheduler.admissible_ever(&request) {
            Some(RejectReason::ExceedsGroupQuota)
        } else {
            None
        };
        if let Some(reason) = verdict {
            self.rejected += 1;
            self.metrics.jobs_rejected.inc();
            self.emit(now, PlatformEvent::Rejected { job: id, reason });
            let _ = self.apply_lifecycle_event(id, JobEvent::Reject { at_secs: now });
            return;
        }
        let _ = self.apply_lifecycle_event(id, JobEvent::Enqueue);
        self.scheduler.submit(request);
        self.emit(now, PlatformEvent::Queued { job: id });
        self.run_round();
    }

    /// Whether `schema`'s gang could ever be placed on an empty cluster.
    pub(crate) fn gang_feasible(&self, schema: &TaskSchema) -> bool {
        let per = schema.resources;
        let mut capacity_workers: u32 = 0;
        for node in self.cluster.nodes() {
            let cap = node.capacity();
            let mut k = u32::MAX;
            if let Some(q) = cap.gpus.checked_div(per.gpus) {
                k = k.min(q);
            }
            if let Some(q) = cap.cpu_cores.checked_div(per.cpu_cores) {
                k = k.min(q);
            }
            if let Some(q) = cap.mem_gb.checked_div(per.mem_gb) {
                k = k.min(q);
            }
            if k == u32::MAX {
                k = 0; // zero-resource schemas are rejected by validation
            }
            capacity_workers = capacity_workers.saturating_add(k);
            if capacity_workers >= schema.workers {
                return true;
            }
        }
        false
    }
}
