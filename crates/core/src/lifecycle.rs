//! The job lifecycle engine: the **only** module that mutates job state.
//!
//! Every state change in the platform flows through
//! `Platform::apply_lifecycle_event` (crate-internal), which routes the typed
//! [`JobEvent`] through `JobState::transition` (the checked transition
//! matrix in `tacc-workload`), records the applied transition in the
//! [`TransitionLog`], and bumps the run token at the transition site
//! (entering or leaving `Running`). Illegal transitions — e.g. a
//! stale-token fault delivered after completion — are rejected without
//! touching state and surfaced on the event bus as
//! `PlatformEvent::IllegalTransition`, plus the
//! `tacc_core_illegal_transitions_total` counter.
//!
//! The `single-writer` lint family (`lint-owners.toml`, rule
//! `job-state-transition`) enforces that no production code outside
//! this module calls `Job::apply_event`.
//!
//! This module also owns the scheduling-round glue (`run_round`,
//! `apply_decisions`) and the start/preempt/finish/cancel handlers,
//! since those are exactly the places transitions happen.

use std::collections::VecDeque;
use std::fmt::{self, Write as _};

use tacc_cluster::{GpuModel, NodeId};
use tacc_obs::{PlatformEvent, TransitionEvent};
use tacc_sim::{SimDuration, SimTime};
use tacc_workload::{
    IllegalTransition, Job, JobEvent, JobEventKind, JobId, JobState, RuntimePreference, TaskKind,
};

use crate::platform::{ActiveRun, Event, Platform};
use crate::report::CompletedJob;

/// One applied lifecycle transition, as recorded by the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionRecord {
    /// Simulated time of the transition, seconds.
    pub at_secs: f64,
    /// The job that transitioned.
    pub job: JobId,
    /// State before the event.
    pub from: JobState,
    /// State after the event.
    pub to: JobState,
    /// The event kind that drove the transition.
    pub event: JobEventKind,
}

/// Bounded ring of applied transitions plus lifetime counters. Mirrors
/// the event bus's eviction discipline: recording never fails, the
/// oldest record is dropped once the ring fills, and counters survive
/// eviction.
#[derive(Debug)]
pub(crate) struct TransitionLog {
    capacity: usize,
    buf: VecDeque<TransitionRecord>,
    dropped: u64,
    total: u64,
    illegal: u64,
}

impl TransitionLog {
    pub(crate) fn new(capacity: usize) -> Self {
        TransitionLog {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
            dropped: 0,
            total: 0,
            illegal: 0,
        }
    }

    fn record(&mut self, rec: TransitionRecord) {
        self.total += 1;
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }

    fn note_illegal(&mut self) {
        self.illegal += 1;
    }

    fn iter(&self) -> impl Iterator<Item = &TransitionRecord> {
        self.buf.iter()
    }
}

/// Why a lifecycle event was not applied.
///
/// `Illegal` is the transition matrix saying no — also surfaced on the
/// bus, so callers may discard it (see the crate-internal
/// `Platform::apply_lifecycle_event`). `UnknownJob` means the caller
/// handed the engine an id the platform never tracked: a bug upstream,
/// reported as a value instead of a panic so the replay path stays
/// panic-free end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleError {
    /// The job id is not in the platform's job table.
    UnknownJob(JobId),
    /// The transition matrix rejected the event; the job is untouched.
    Illegal(IllegalTransition),
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleError::UnknownJob(id) => {
                write!(f, "job {id:?} is not in the platform job table")
            }
            LifecycleError::Illegal(err) => err.fmt(f),
        }
    }
}

impl std::error::Error for LifecycleError {}

impl From<IllegalTransition> for LifecycleError {
    fn from(err: IllegalTransition) -> Self {
        LifecycleError::Illegal(err)
    }
}

impl Platform {
    /// The tracked job behind an id the platform produced itself (active
    /// runs, scheduler decisions, event payloads). Absence is a platform
    /// bug; it is reported as `None` (or [`LifecycleError::UnknownJob`]
    /// at the engine boundary) rather than panicking, so the
    /// `panic-surface` lint keeps the reachable simulation path at zero
    /// panic sites.
    pub(crate) fn job_ref(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(id).map(|slot| &slot.job)
    }

    /// Mutable sibling of [`Platform::job_ref`].
    pub(crate) fn job_mut(&mut self, id: JobId) -> Option<&mut Job> {
        self.jobs.get_mut(id).map(|slot| &mut slot.job)
    }

    /// Applies one lifecycle event to a job — the platform's single
    /// state-write site.
    ///
    /// On success the transition is appended to the transition log and
    /// the run token is bumped if the job entered or left `Running`
    /// (invalidating any in-flight `Finish`/`Fault` events aimed at the
    /// previous run). On an illegal transition the job is untouched; the
    /// rejection is surfaced as a `PlatformEvent::IllegalTransition` on
    /// the bus and counted in `tacc_core_illegal_transitions_total`, so
    /// callers may safely discard the returned error.
    pub(crate) fn apply_lifecycle_event(
        &mut self,
        id: JobId,
        event: JobEvent,
    ) -> Result<JobState, LifecycleError> {
        let now = self.clock.now().as_secs();
        let Some(job) = self.job_mut(id) else {
            return Err(LifecycleError::UnknownJob(id));
        };
        let from = job.state();
        match job.apply_event(event) {
            Ok(to) => {
                if to == JobState::Running || from == JobState::Running {
                    self.bump_token(id);
                }
                self.transitions.record(TransitionRecord {
                    at_secs: now,
                    job: id,
                    from,
                    to,
                    event: event.kind(),
                });
                // The span book folds the same stream the log records, so
                // live timelines and timelines replayed from the exported
                // JSONL are the same pure function of the same input.
                self.spans.observe(TransitionEvent {
                    at_secs: now,
                    job: id,
                    from,
                    to,
                    event: event.kind(),
                });
                Ok(to)
            }
            Err(err) => {
                self.transitions.note_illegal();
                self.metrics.illegal_transitions.inc();
                self.emit(
                    now,
                    PlatformEvent::IllegalTransition {
                        job: id,
                        from: err.from.to_string(),
                        event: err.event.to_string(),
                    },
                );
                Err(LifecycleError::Illegal(err))
            }
        }
    }

    /// Test harness: delivers a raw lifecycle event to the engine,
    /// bypassing the event-loop guards (token checks, terminal-state
    /// short-circuits) that normally filter it out — exactly what a
    /// platform bug would do. Accounting is *not* adjusted; use this
    /// only to probe the engine's rejection behavior.
    #[doc(hidden)]
    pub fn force_lifecycle_event(
        &mut self,
        id: JobId,
        event: JobEvent,
    ) -> Result<JobState, LifecycleError> {
        self.apply_lifecycle_event(id, event)
    }

    /// Applied transitions concerning `job`, oldest first (bounded by
    /// the transition-log ring).
    pub fn transitions(&self, job: JobId) -> Vec<TransitionRecord> {
        self.transitions
            .iter()
            .filter(|r| r.job == job)
            .copied()
            .collect()
    }

    /// Total lifecycle transitions ever applied (survives ring eviction).
    pub fn transitions_recorded(&self) -> u64 {
        self.transitions.total
    }

    /// Transition records evicted from the bounded ring.
    pub fn transitions_dropped(&self) -> u64 {
        self.transitions.dropped
    }

    /// Lifecycle events rejected by the transition matrix so far.
    pub fn illegal_transitions(&self) -> u64 {
        self.transitions.illegal
    }

    /// Serializes the retained transition log as JSON Lines (oldest
    /// first). Hand-rolled like the event bus export: dependency-free
    /// and byte-deterministic.
    pub fn transitions_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.transitions.iter() {
            let _ = write!(
                out,
                "{{\"at_secs\":{},\"job\":{},\"from\":\"{}\",\"to\":\"{}\",\"event\":\"{}\"}}",
                r.at_secs,
                r.job.value(),
                r.from,
                r.to,
                r.event
            );
            out.push('\n');
        }
        out
    }

    /// Cancels a job (user kill). Queued jobs are dequeued; running jobs
    /// are stopped and their resources freed. Returns `false` if the job
    /// does not exist or is already terminal.
    pub fn cancel_job(&mut self, id: JobId) -> bool {
        let now = self.clock.now().as_secs();
        let Some(slot) = self.jobs.get(id) else {
            return false;
        };
        if slot.job.state().is_terminal() {
            return false;
        }
        if slot.active.is_some() {
            self.release_run(id, now);
            self.scheduler.task_finished(id, &mut self.cluster);
        } else {
            self.scheduler.cancel(id);
        }
        let _ = self.apply_lifecycle_event(id, JobEvent::Cancel { at_secs: now });
        self.cancelled += 1;
        self.metrics.jobs_cancelled.inc();
        self.emit(now, PlatformEvent::Cancelled { job: id });
        self.run_round();
        true
    }

    /// One scheduling round plus processing of its decisions — in the
    /// order the scheduler took them, because a reclaim may preempt a task
    /// started earlier in the same round.
    pub(crate) fn run_round(&mut self) {
        let now = self.clock.now().as_secs();
        // Iterate to a fixpoint: a round's preemptions re-queue victims
        // that can only restart in a subsequent round (each round works on
        // a queue snapshot). Guaranteed to terminate: every non-empty
        // round starts at least one job.
        loop {
            let outcome = self.scheduler.schedule(now, &mut self.cluster);
            if outcome.is_empty() {
                break;
            }
            self.apply_decisions(&outcome, now);
        }
        self.refresh_cluster_gauges();
    }

    pub(crate) fn apply_decisions(&mut self, outcome: &tacc_sched::SchedOutcome, now: f64) {
        for decision in &outcome.decisions {
            match decision {
                tacc_sched::Decision::Preempt { id, reclaimed_for } => {
                    self.on_preempted(*id, now);
                    self.emit(
                        now,
                        PlatformEvent::Preempted {
                            job: *id,
                            reclaimed_for: *reclaimed_for,
                        },
                    );
                }
                tacc_sched::Decision::Start(started) => {
                    self.on_started(
                        started.request.id,
                        &started.worker_nodes,
                        started.backfilled,
                        now,
                    );
                }
                _ => {}
            }
        }
    }

    pub(crate) fn on_started(
        &mut self,
        id: JobId,
        worker_nodes: &[NodeId],
        backfilled: bool,
        now: f64,
    ) {
        let _ = self.apply_lifecycle_event(id, JobEvent::Start { at_secs: now });
        // Copy out only the schema fields this path needs; cloning the whole
        // schema would heap-allocate the name/image/dependency strings on
        // every start.
        let Some(job) = self.job_ref(id) else {
            return;
        };
        let schema = job.schema();
        let per_worker_gpus = schema.resources.gpus;
        let requested_workers = schema.workers;
        let model = schema.model;
        let kind = schema.kind;
        let qos = schema.qos;
        let group = schema.group;
        let dataset = schema.env.dataset.clone();
        let remaining = job.remaining_secs();
        let resumed = job.preemptions() + job.restarts() > 0;

        // Elastic tasks may have been granted fewer workers than requested
        // (one entry in `worker_nodes` per granted worker); a shrunken
        // data-parallel gang runs proportionally longer.
        let granted_workers = (worker_nodes.len().min(u32::MAX as usize) as u32).max(1);
        let granted_gpus = per_worker_gpus * granted_workers; // 0 for CPU tasks
        let shrink = f64::from(requested_workers) / f64::from(granted_workers);

        let gpu_model = self
            .cluster
            .node(worker_nodes[0])
            .map(|n| n.gpu_model())
            .unwrap_or(GpuModel::A100);
        let runtime = self
            .jobs
            .get(id)
            .map(|slot| slot.runtime)
            .unwrap_or(RuntimePreference::Auto);
        let plan = match (&model, kind) {
            (Some(profile), TaskKind::Training | TaskKind::Inference) => self.exec.plan_training(
                &self.cluster,
                runtime,
                worker_nodes,
                granted_gpus.max(1),
                gpu_model,
                profile,
            ),
            _ if kind.is_cpu_only() => self.exec.plan_simple(None),
            _ => self.exec.plan_simple(Some(gpu_model)),
        };

        // Co-location interference from neighbours present at start time.
        let interference = self.exec.interference_factor(&self.cluster, worker_nodes);
        let stretch =
            plan.slowdown * interference * self.checkpoint.runtime_overhead_factor() * shrink;
        let resume_penalty = if resumed {
            self.checkpoint.restore_cost_secs()
        } else {
            0.0
        };
        // Dataset staging from the shared filesystem happens before any
        // useful work; nodes that still cache the dataset skip it.
        let staging_secs = match (&mut self.store, &dataset) {
            (Some(store), Some((dataset, size_mb))) => {
                let staging = store.begin_staging(worker_nodes, dataset, *size_mb);
                if staging.readers > 0 {
                    self.staging_secs_total += staging.secs;
                    self.stagings += 1;
                    self.events.schedule(
                        SimTime::from_secs(now) + SimDuration::from_secs(staging.secs),
                        Event::StagingDone { staging },
                    );
                }
                staging.secs
            }
            _ => 0.0,
        };
        let wall = remaining * stretch + resume_penalty + staging_secs;
        // The `Start` transition above minted this run's token.
        let token = self.current_token(id);
        if let Some(slot) = self.jobs.get_mut(id) {
            let mut distinct = worker_nodes.to_vec();
            distinct.sort_unstable();
            distinct.dedup();
            slot.last_nodes = distinct;
            slot.active = Some(ActiveRun {
                start_secs: now,
                stretch,
                gpus: f64::from(granted_gpus),
                // Both restore and staging are dead wall time before useful
                // progress; interruption accounting subtracts them.
                resume_penalty: resume_penalty + staging_secs,
                worker_nodes: worker_nodes.to_vec(),
                runtime: plan.runtime,
            });
        }
        self.events.schedule(
            SimTime::from_secs(now) + SimDuration::from_secs(wall),
            Event::Finish { job: id, token },
        );
        if let Some(quantum) = self.config.scheduler.time_slice_secs {
            if qos == tacc_workload::QosClass::BestEffort {
                self.events.schedule(
                    SimTime::from_secs(now) + SimDuration::from_secs(quantum),
                    Event::RotateCheck,
                );
            }
        }
        if let Some(injector) = &self.injector {
            if let Some(fault) = injector.first_fault(worker_nodes, now, wall) {
                self.events.schedule(
                    SimTime::from_secs(now) + SimDuration::from_secs(fault.at_secs),
                    Event::Fault {
                        job: id,
                        token,
                        node: fault.node,
                    },
                );
            }
        }

        let gpus = f64::from(granted_gpus);
        self.accrue_group_time(now);
        self.util.acquire(now, gpus);
        self.group_busy[group.index()] += gpus;
        let distinct_nodes = {
            let mut n = worker_nodes.to_vec();
            n.sort_unstable();
            n.dedup();
            n.len()
        };
        self.exec_telemetry.note_plan(&plan);
        self.emit(
            now,
            PlatformEvent::Placed {
                job: id,
                nodes: distinct_nodes as u64,
                runtime: format!("{:?}", plan.runtime),
                slowdown: plan.slowdown,
                granted_workers: u64::from(granted_workers),
                requested_workers: u64::from(requested_workers),
                backfilled,
            },
        );
    }

    pub(crate) fn on_preempted(&mut self, id: JobId, now: f64) {
        let run = self.release_run(id, now);
        let (progress, lost) = self.interruption_amounts(&run, now);
        let _ = self.apply_lifecycle_event(
            id,
            JobEvent::Preempt {
                at_secs: now,
                progress_secs: progress,
                lost_secs: lost,
            },
        );
        // The scheduler already holds the re-queued request.
        let _ = self.apply_lifecycle_event(id, JobEvent::Enqueue);
    }

    pub(crate) fn on_finish(&mut self, id: JobId, token: u64) {
        if self.jobs.get(id).map(|slot| slot.token) != Some(token) {
            return; // stale completion from a run that was interrupted
        }
        let now = self.clock.now().as_secs();
        let _run = self.release_run(id, now);
        self.scheduler.task_finished(id, &mut self.cluster);
        let _ = self.apply_lifecycle_event(id, JobEvent::Complete { at_secs: now });
        let (record, jct_secs, queue_delay_secs) = {
            let Some(job) = self.job_ref(id) else {
                return;
            };
            let schema = job.schema();
            // `Complete` set finish = now, so JCT is exactly now - submit.
            let jct_secs = now - job.submit_secs();
            let queue_delay_secs = job.queueing_delay_secs().unwrap_or(0.0);
            (
                CompletedJob {
                    id,
                    group: schema.group,
                    gpus: schema.total_gpus(),
                    kind: schema.kind,
                    submit_secs: job.submit_secs(),
                    queue_delay_secs,
                    jct_secs,
                    service_secs: job.service_secs(),
                    preemptions: job.preemptions(),
                    restarts: job.restarts(),
                    wasted_secs: job.wasted_secs(),
                },
                jct_secs,
                queue_delay_secs,
            )
        };
        self.completed.push(record);
        self.metrics.jobs_completed.inc();
        self.metrics.queue_delay.observe(queue_delay_secs);
        self.emit(now, PlatformEvent::Completed { job: id, jct_secs });
        self.run_round();
    }

    /// The current run token for a job (0 if it never started).
    pub(crate) fn current_token(&self, id: JobId) -> u64 {
        self.jobs.get(id).map(|slot| slot.token).unwrap_or(0)
    }

    pub(crate) fn bump_token(&mut self, id: JobId) -> u64 {
        match self.jobs.get_mut(id) {
            Some(slot) => {
                slot.token += 1;
                slot.token
            }
            None => 0,
        }
    }
}
