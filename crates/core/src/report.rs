//! Simulation reports: the numbers every experiment reads.

use serde::{Deserialize, Serialize};

use tacc_compiler::CacheStats;
use tacc_metrics::{jain_index, Summary, UtilizationTracker};
use tacc_obs::{GoodputReport, HistogramSnapshot};
use tacc_workload::{GroupId, JobId, TaskKind};

/// Per-job completion record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletedJob {
    /// The job.
    pub id: JobId,
    /// Its group.
    pub group: GroupId,
    /// Total GPUs it used.
    pub gpus: u32,
    /// Task kind.
    pub kind: TaskKind,
    /// Submission time, seconds.
    pub submit_secs: f64,
    /// Delay from submission to first start, seconds.
    pub queue_delay_secs: f64,
    /// Job completion time (submission → completion), seconds.
    pub jct_secs: f64,
    /// Oracle service requirement, seconds.
    pub service_secs: f64,
    /// Times preempted.
    pub preemptions: u32,
    /// Times restarted after faults.
    pub restarts: u32,
    /// Service-seconds of work lost to interruptions.
    pub wasted_secs: f64,
}

/// Per-group aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupReport {
    /// The group.
    pub group: GroupId,
    /// Completed jobs.
    pub completed: usize,
    /// Mean queueing delay, seconds.
    pub mean_queue_delay_secs: f64,
    /// 95th percentile queueing delay, seconds.
    pub p95_queue_delay_secs: f64,
    /// GPU-hours of service delivered to the group.
    pub gpu_hours: f64,
}

/// The aggregate outcome of a platform run.
///
/// Equality is manual, not derived: every field participates except the
/// wall-clock-measured parts of [`round_latency`](Self::round_latency),
/// so the determinism guarantee ("same config + trace ⇒ equal reports")
/// keeps holding even though host timing varies between runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Jobs submitted.
    pub submitted: usize,
    /// Jobs completed successfully.
    pub completed: usize,
    /// Jobs that failed fatally.
    pub failed: u64,
    /// Jobs rejected at admission (gang can never fit the cluster).
    pub rejected: u64,
    /// Jobs the user cancelled.
    pub cancelled: u64,
    /// Mean dataset-staging time per staged start, seconds.
    pub mean_staging_secs: f64,
    /// Number of starts that actually staged data.
    pub stagings: u64,
    /// Node faults injected.
    pub faults: u64,
    /// Faults absorbed by runtime switching.
    pub failovers: u64,
    /// Preemptions performed by the scheduler.
    pub preemptions: u64,
    /// Starts that were backfills.
    pub backfill_starts: u64,
    /// Job completion time summary (seconds).
    pub jct: Summary,
    /// Queueing delay summary (seconds).
    pub queue_delay: Summary,
    /// Slowdown summary: JCT / service time per job.
    pub slowdown: Summary,
    /// Mean cluster GPU utilization over the run (0..=1).
    pub mean_utilization: f64,
    /// Useful service GPU-hours delivered.
    pub useful_gpu_hours: f64,
    /// GPU-hours lost to preemption/failure waste, including everything
    /// consumed by jobs that ultimately failed.
    pub wasted_gpu_hours: f64,
    /// Goodput: useful / (useful + wasted).
    pub goodput: f64,
    /// Per-group aggregates.
    pub groups: Vec<GroupReport>,
    /// Jain fairness index over per-group GPU-hours delivered.
    pub fairness: f64,
    /// Compiler cache counters at end of run.
    pub cache_hits: u64,
    /// Compiler cache miss count at end of run.
    pub cache_misses: u64,
    /// Byte-level cache hit rate.
    pub cache_byte_hit_rate: f64,
    /// Mean provisioning latency per compilation, seconds.
    pub mean_provisioning_secs: f64,
    /// Scheduling rounds executed.
    pub rounds: u64,
    /// Wall-clock scheduler round latency distribution, seconds. This is
    /// measured host time (experiment T4), not simulated time, so it is
    /// excluded from determinism comparisons.
    pub round_latency: HistogramSnapshot,
    /// Platform events recorded on the bus over the run.
    pub events_recorded: u64,
    /// Events dropped from the bounded bus ring.
    pub events_dropped: u64,
    /// ML Productivity Goodput decomposition
    /// (`availability × throughput_efficiency × (1 − badput)`), with
    /// badput itemized by cause. Derived purely from sim-time span
    /// timelines, so equality is strict.
    pub goodput_decomposition: GoodputReport,
    /// The per-job completion records (for CDFs in figure harnesses).
    pub jobs: Vec<CompletedJob>,
}

impl PartialEq for SimulationReport {
    fn eq(&self, other: &Self) -> bool {
        // Destructure so that adding a field without deciding whether it
        // participates in determinism comparisons fails to compile.
        let SimulationReport {
            submitted,
            completed,
            failed,
            rejected,
            cancelled,
            mean_staging_secs,
            stagings,
            faults,
            failovers,
            preemptions,
            backfill_starts,
            jct,
            queue_delay,
            slowdown,
            mean_utilization,
            useful_gpu_hours,
            wasted_gpu_hours,
            goodput,
            groups,
            fairness,
            cache_hits,
            cache_misses,
            cache_byte_hit_rate,
            mean_provisioning_secs,
            rounds,
            round_latency,
            events_recorded,
            events_dropped,
            goodput_decomposition,
            jobs,
        } = self;
        *submitted == other.submitted
            && *completed == other.completed
            && *failed == other.failed
            && *rejected == other.rejected
            && *cancelled == other.cancelled
            && *mean_staging_secs == other.mean_staging_secs
            && *stagings == other.stagings
            && *faults == other.faults
            && *failovers == other.failovers
            && *preemptions == other.preemptions
            && *backfill_starts == other.backfill_starts
            && *jct == other.jct
            && *queue_delay == other.queue_delay
            && *slowdown == other.slowdown
            && *mean_utilization == other.mean_utilization
            && *useful_gpu_hours == other.useful_gpu_hours
            && *wasted_gpu_hours == other.wasted_gpu_hours
            && *goodput == other.goodput
            && *groups == other.groups
            && *fairness == other.fairness
            && *cache_hits == other.cache_hits
            && *cache_misses == other.cache_misses
            && *cache_byte_hit_rate == other.cache_byte_hit_rate
            && *mean_provisioning_secs == other.mean_provisioning_secs
            && *rounds == other.rounds
            // Only the observation count of the round-latency histogram is
            // deterministic; the bucket placement and sum are host time.
            && round_latency.count == other.round_latency.count
            && *events_recorded == other.events_recorded
            && *events_dropped == other.events_dropped
            // Sim-time-only by construction, so strict equality holds
            // across replays.
            && *goodput_decomposition == other.goodput_decomposition
            && *jobs == other.jobs
    }
}

/// Everything [`SimulationReport::build`] aggregates, gathered by the
/// platform at report time.
pub(crate) struct ReportInputs<'a> {
    pub completed: &'a [CompletedJob],
    pub submitted: usize,
    pub failed: u64,
    pub failed_waste_gpu_hours: f64,
    pub rejected: u64,
    pub cancelled: u64,
    pub staging_secs_total: f64,
    pub stagings: u64,
    pub faults: u64,
    pub failovers: u64,
    pub preemptions: u64,
    pub backfill_starts: u64,
    pub util: &'a UtilizationTracker,
    pub horizon_secs: f64,
    pub group_gpu_secs: &'a [f64],
    pub group_count: usize,
    pub cache: CacheStats,
    pub provisioning_latency_total: f64,
    pub compilations: u64,
    pub rounds: u64,
    pub round_latency: HistogramSnapshot,
    pub events_recorded: u64,
    pub events_dropped: u64,
    pub goodput_decomposition: GoodputReport,
}

impl SimulationReport {
    pub(crate) fn build(inputs: ReportInputs<'_>) -> Self {
        let ReportInputs {
            completed,
            submitted,
            failed,
            failed_waste_gpu_hours,
            rejected,
            cancelled,
            staging_secs_total,
            stagings,
            faults,
            failovers,
            preemptions,
            backfill_starts,
            util,
            horizon_secs,
            group_gpu_secs,
            group_count,
            cache,
            provisioning_latency_total,
            compilations,
            rounds,
            round_latency,
            events_recorded,
            events_dropped,
            goodput_decomposition,
        } = inputs;
        let jct: Vec<f64> = completed.iter().map(|j| j.jct_secs).collect();
        let delay: Vec<f64> = completed.iter().map(|j| j.queue_delay_secs).collect();
        let slowdown: Vec<f64> = completed
            .iter()
            .map(|j| (j.jct_secs / j.service_secs).max(1.0))
            .collect();
        let useful_gpu_hours: f64 = completed
            .iter()
            .map(|j| f64::from(j.gpus) * j.service_secs / 3600.0)
            .sum();
        let wasted_gpu_hours: f64 = completed
            .iter()
            .map(|j| f64::from(j.gpus) * j.wasted_secs / 3600.0)
            .sum::<f64>()
            + failed_waste_gpu_hours;
        let goodput = if useful_gpu_hours + wasted_gpu_hours > 0.0 {
            useful_gpu_hours / (useful_gpu_hours + wasted_gpu_hours)
        } else {
            1.0
        };

        let mut groups = Vec::with_capacity(group_count);
        for gi in 0..group_count {
            let group = GroupId::from_index(gi);
            let delays: Vec<f64> = completed
                .iter()
                .filter(|j| j.group == group)
                .map(|j| j.queue_delay_secs)
                .collect();
            let s = Summary::from_samples(&delays);
            groups.push(GroupReport {
                group,
                completed: delays.len(),
                mean_queue_delay_secs: s.mean(),
                p95_queue_delay_secs: s.p95(),
                gpu_hours: group_gpu_secs.get(gi).copied().unwrap_or(0.0) / 3600.0,
            });
        }
        let group_hours: Vec<f64> = groups.iter().map(|g| g.gpu_hours).collect();

        SimulationReport {
            submitted,
            completed: completed.len(),
            failed,
            rejected,
            cancelled,
            mean_staging_secs: if stagings > 0 {
                staging_secs_total / stagings as f64
            } else {
                0.0
            },
            stagings,
            faults,
            failovers,
            preemptions,
            backfill_starts,
            jct: Summary::from_samples(&jct),
            queue_delay: Summary::from_samples(&delay),
            slowdown: Summary::from_samples(&slowdown),
            mean_utilization: util.mean_utilization(0.0, horizon_secs),
            useful_gpu_hours,
            wasted_gpu_hours,
            goodput,
            fairness: jain_index(&group_hours),
            groups,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_byte_hit_rate: cache.byte_hit_rate(),
            mean_provisioning_secs: if compilations > 0 {
                provisioning_latency_total / compilations as f64
            } else {
                0.0
            },
            rounds,
            round_latency,
            events_recorded,
            events_dropped,
            goodput_decomposition,
            jobs: completed.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_goodput(horizon_secs: f64, total_gpus: f64) -> GoodputReport {
        GoodputReport::compute(
            &tacc_obs::SpanBook::new(tacc_obs::SpanConfig::plain()),
            horizon_secs,
            total_gpus,
            &std::collections::BTreeMap::new(),
        )
    }

    fn job(group: usize, gpus: u32, jct: f64, service: f64, wasted: f64) -> CompletedJob {
        CompletedJob {
            id: JobId::from_value(0),
            group: GroupId::from_index(group),
            gpus,
            kind: TaskKind::Training,
            submit_secs: 0.0,
            queue_delay_secs: jct - service,
            jct_secs: jct,
            service_secs: service,
            preemptions: 0,
            restarts: 0,
            wasted_secs: wasted,
        }
    }

    #[test]
    fn report_math() {
        let mut util = UtilizationTracker::new(8.0);
        util.acquire(0.0, 4.0);
        util.release(1800.0, 4.0);
        let completed = vec![
            job(0, 2, 2000.0, 1800.0, 0.0),
            job(1, 2, 3600.0, 1800.0, 1800.0),
        ];
        let group_secs = vec![3600.0 * 2.0, 3600.0 * 2.0];
        let r = SimulationReport::build(ReportInputs {
            completed: &completed,
            submitted: 2,
            failed: 0,
            failed_waste_gpu_hours: 0.0,
            rejected: 0,
            cancelled: 0,
            staging_secs_total: 0.0,
            stagings: 0,
            faults: 0,
            failovers: 0,
            preemptions: 1,
            backfill_starts: 0,
            util: &util,
            horizon_secs: 3600.0,
            group_gpu_secs: &group_secs,
            group_count: 2,
            cache: CacheStats::default(),
            provisioning_latency_total: 10.0,
            compilations: 2,
            rounds: 4,
            round_latency: HistogramSnapshot::default(),
            events_recorded: 9,
            events_dropped: 0,
            goodput_decomposition: empty_goodput(3600.0, 8.0),
        });
        assert_eq!(r.rounds, 4);
        assert_eq!(r.events_recorded, 9);
        assert_eq!(r.completed, 2);
        assert_eq!(r.jct.count(), 2);
        // useful = 2*(2*1800/3600) = 2 gpu-hours; wasted = 2*1800/3600 = 1.
        assert!((r.useful_gpu_hours - 2.0).abs() < 1e-9);
        assert!((r.wasted_gpu_hours - 1.0).abs() < 1e-9);
        assert!((r.goodput - 2.0 / 3.0).abs() < 1e-9);
        // Equal group hours: perfectly fair.
        assert!((r.fairness - 1.0).abs() < 1e-12);
        // Utilization: 4/8 busy for half the window.
        assert!((r.mean_utilization - 0.25).abs() < 1e-9);
        assert_eq!(r.mean_provisioning_secs, 5.0);
        assert_eq!(r.groups.len(), 2);
    }

    #[test]
    fn empty_report_is_sane() {
        let util = UtilizationTracker::new(8.0);
        let r = SimulationReport::build(ReportInputs {
            completed: &[],
            submitted: 0,
            failed: 0,
            failed_waste_gpu_hours: 0.0,
            rejected: 0,
            cancelled: 0,
            staging_secs_total: 0.0,
            stagings: 0,
            faults: 0,
            failovers: 0,
            preemptions: 0,
            backfill_starts: 0,
            util: &util,
            horizon_secs: 100.0,
            group_gpu_secs: &[],
            group_count: 0,
            cache: CacheStats::default(),
            provisioning_latency_total: 0.0,
            compilations: 0,
            rounds: 0,
            round_latency: HistogramSnapshot::default(),
            events_recorded: 0,
            events_dropped: 0,
            goodput_decomposition: empty_goodput(100.0, 8.0),
        });
        assert_eq!(r.completed, 0);
        assert_eq!(r.goodput, 1.0);
        assert_eq!(r.mean_utilization, 0.0);
        assert_eq!(r.fairness, 1.0);
    }
}
