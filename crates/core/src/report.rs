//! Simulation reports: the numbers every experiment reads.

use serde::{Deserialize, Serialize};

use tacc_compiler::CacheStats;
use tacc_metrics::{jain_index, Summary, UtilizationTracker};
use tacc_workload::{GroupId, JobId, TaskKind};

/// Per-job completion record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletedJob {
    /// The job.
    pub id: JobId,
    /// Its group.
    pub group: GroupId,
    /// Total GPUs it used.
    pub gpus: u32,
    /// Task kind.
    pub kind: TaskKind,
    /// Submission time, seconds.
    pub submit_secs: f64,
    /// Delay from submission to first start, seconds.
    pub queue_delay_secs: f64,
    /// Job completion time (submission → completion), seconds.
    pub jct_secs: f64,
    /// Oracle service requirement, seconds.
    pub service_secs: f64,
    /// Times preempted.
    pub preemptions: u32,
    /// Times restarted after faults.
    pub restarts: u32,
    /// Service-seconds of work lost to interruptions.
    pub wasted_secs: f64,
}

/// Per-group aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupReport {
    /// The group.
    pub group: GroupId,
    /// Completed jobs.
    pub completed: usize,
    /// Mean queueing delay, seconds.
    pub mean_queue_delay_secs: f64,
    /// 95th percentile queueing delay, seconds.
    pub p95_queue_delay_secs: f64,
    /// GPU-hours of service delivered to the group.
    pub gpu_hours: f64,
}

/// The aggregate outcome of a platform run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Jobs submitted.
    pub submitted: usize,
    /// Jobs completed successfully.
    pub completed: usize,
    /// Jobs that failed fatally.
    pub failed: u64,
    /// Jobs rejected at admission (gang can never fit the cluster).
    pub rejected: u64,
    /// Jobs the user cancelled.
    pub cancelled: u64,
    /// Mean dataset-staging time per staged start, seconds.
    pub mean_staging_secs: f64,
    /// Number of starts that actually staged data.
    pub stagings: u64,
    /// Node faults injected.
    pub faults: u64,
    /// Faults absorbed by runtime switching.
    pub failovers: u64,
    /// Preemptions performed by the scheduler.
    pub preemptions: u64,
    /// Starts that were backfills.
    pub backfill_starts: u64,
    /// Job completion time summary (seconds).
    pub jct: Summary,
    /// Queueing delay summary (seconds).
    pub queue_delay: Summary,
    /// Slowdown summary: JCT / service time per job.
    pub slowdown: Summary,
    /// Mean cluster GPU utilization over the run (0..=1).
    pub mean_utilization: f64,
    /// Useful service GPU-hours delivered.
    pub useful_gpu_hours: f64,
    /// GPU-hours lost to preemption/failure waste, including everything
    /// consumed by jobs that ultimately failed.
    pub wasted_gpu_hours: f64,
    /// Goodput: useful / (useful + wasted).
    pub goodput: f64,
    /// Per-group aggregates.
    pub groups: Vec<GroupReport>,
    /// Jain fairness index over per-group GPU-hours delivered.
    pub fairness: f64,
    /// Compiler cache counters at end of run.
    pub cache_hits: u64,
    /// Compiler cache miss count at end of run.
    pub cache_misses: u64,
    /// Byte-level cache hit rate.
    pub cache_byte_hit_rate: f64,
    /// Mean provisioning latency per compilation, seconds.
    pub mean_provisioning_secs: f64,
    /// The per-job completion records (for CDFs in figure harnesses).
    pub jobs: Vec<CompletedJob>,
}

impl SimulationReport {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build(
        completed: &[CompletedJob],
        submitted: usize,
        failed: u64,
        failed_waste_gpu_hours: f64,
        rejected: u64,
        cancelled: u64,
        staging_secs_total: f64,
        stagings: u64,
        faults: u64,
        failovers: u64,
        preemptions: u64,
        backfill_starts: u64,
        util: &UtilizationTracker,
        horizon_secs: f64,
        group_gpu_secs: &[f64],
        group_count: usize,
        cache: CacheStats,
        provisioning_latency_total: f64,
        compilations: u64,
    ) -> Self {
        let jct: Vec<f64> = completed.iter().map(|j| j.jct_secs).collect();
        let delay: Vec<f64> = completed.iter().map(|j| j.queue_delay_secs).collect();
        let slowdown: Vec<f64> = completed
            .iter()
            .map(|j| (j.jct_secs / j.service_secs).max(1.0))
            .collect();
        let useful_gpu_hours: f64 = completed
            .iter()
            .map(|j| f64::from(j.gpus) * j.service_secs / 3600.0)
            .sum();
        let wasted_gpu_hours: f64 = completed
            .iter()
            .map(|j| f64::from(j.gpus) * j.wasted_secs / 3600.0)
            .sum::<f64>()
            + failed_waste_gpu_hours;
        let goodput = if useful_gpu_hours + wasted_gpu_hours > 0.0 {
            useful_gpu_hours / (useful_gpu_hours + wasted_gpu_hours)
        } else {
            1.0
        };

        let mut groups = Vec::with_capacity(group_count);
        for gi in 0..group_count {
            let group = GroupId::from_index(gi);
            let delays: Vec<f64> = completed
                .iter()
                .filter(|j| j.group == group)
                .map(|j| j.queue_delay_secs)
                .collect();
            let s = Summary::from_samples(&delays);
            groups.push(GroupReport {
                group,
                completed: delays.len(),
                mean_queue_delay_secs: s.mean(),
                p95_queue_delay_secs: s.p95(),
                gpu_hours: group_gpu_secs.get(gi).copied().unwrap_or(0.0) / 3600.0,
            });
        }
        let group_hours: Vec<f64> = groups.iter().map(|g| g.gpu_hours).collect();

        SimulationReport {
            submitted,
            completed: completed.len(),
            failed,
            rejected,
            cancelled,
            mean_staging_secs: if stagings > 0 {
                staging_secs_total / stagings as f64
            } else {
                0.0
            },
            stagings,
            faults,
            failovers,
            preemptions,
            backfill_starts,
            jct: Summary::from_samples(&jct),
            queue_delay: Summary::from_samples(&delay),
            slowdown: Summary::from_samples(&slowdown),
            mean_utilization: util.mean_utilization(0.0, horizon_secs),
            useful_gpu_hours,
            wasted_gpu_hours,
            goodput,
            fairness: jain_index(&group_hours),
            groups,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_byte_hit_rate: cache.byte_hit_rate(),
            mean_provisioning_secs: if compilations > 0 {
                provisioning_latency_total / compilations as f64
            } else {
                0.0
            },
            jobs: completed.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(group: usize, gpus: u32, jct: f64, service: f64, wasted: f64) -> CompletedJob {
        CompletedJob {
            id: JobId::from_value(0),
            group: GroupId::from_index(group),
            gpus,
            kind: TaskKind::Training,
            submit_secs: 0.0,
            queue_delay_secs: jct - service,
            jct_secs: jct,
            service_secs: service,
            preemptions: 0,
            restarts: 0,
            wasted_secs: wasted,
        }
    }

    #[test]
    fn report_math() {
        let mut util = UtilizationTracker::new(8.0);
        util.acquire(0.0, 4.0);
        util.release(1800.0, 4.0);
        let completed = vec![
            job(0, 2, 2000.0, 1800.0, 0.0),
            job(1, 2, 3600.0, 1800.0, 1800.0),
        ];
        let group_secs = vec![3600.0 * 2.0, 3600.0 * 2.0];
        let r = SimulationReport::build(
            &completed,
            2,
            0,
            0.0,
            0,
            0,
            0.0,
            0,
            0,
            0,
            1,
            0,
            &util,
            3600.0,
            &group_secs,
            2,
            CacheStats::default(),
            10.0,
            2,
        );
        assert_eq!(r.completed, 2);
        assert_eq!(r.jct.count(), 2);
        // useful = 2*(2*1800/3600) = 2 gpu-hours; wasted = 2*1800/3600 = 1.
        assert!((r.useful_gpu_hours - 2.0).abs() < 1e-9);
        assert!((r.wasted_gpu_hours - 1.0).abs() < 1e-9);
        assert!((r.goodput - 2.0 / 3.0).abs() < 1e-9);
        // Equal group hours: perfectly fair.
        assert!((r.fairness - 1.0).abs() < 1e-12);
        // Utilization: 4/8 busy for half the window.
        assert!((r.mean_utilization - 0.25).abs() < 1e-9);
        assert_eq!(r.mean_provisioning_secs, 5.0);
        assert_eq!(r.groups.len(), 2);
    }

    #[test]
    fn empty_report_is_sane() {
        let util = UtilizationTracker::new(8.0);
        let r = SimulationReport::build(
            &[],
            0,
            0,
            0.0,
            0,
            0,
            0.0,
            0,
            0,
            0,
            0,
            0,
            &util,
            100.0,
            &[],
            0,
            CacheStats::default(),
            0.0,
            0,
        );
        assert_eq!(r.completed, 0);
        assert_eq!(r.goodput, 1.0);
        assert_eq!(r.mean_utilization, 0.0);
        assert_eq!(r.fairness, 1.0);
    }
}
