//! The command side of the event-sourced platform: every external
//! mutation of a [`Platform`] — a `tcloud` submission, a cancel, an
//! operator drain, a fault injection, a reservation, a time advance —
//! is a serializable [`Command`] applied through one entry point,
//! [`Platform::apply_command`].
//!
//! The split matters for service mode: the `taccd` daemon validates and
//! timestamps commands into a write-ahead journal *before* applying
//! them, and crash recovery replays the journal through the very same
//! `apply_record` path. Because the platform is deterministic, a replay
//! of the journalled command stream byte-reproduces the lifecycle
//! engine's transition log. Internal DES events
//! ([`crate::platform::Event`]) are unchanged — commands are the
//! *external* ingestion surface layered on top of them.

use tacc_cluster::NodeId;
use tacc_sched::CapacityWindow;
use tacc_sim::SimTime;
use tacc_workload::{
    GroupId, JobId, ModelProfile, QosClass, RuntimeEnv, RuntimePreference, TaskKind, TaskSchema,
};

use std::fmt;

use crate::platform::Platform;
use crate::wire::{obj, Json};

/// An external request to mutate the platform, in serializable form.
///
/// Commands are what clients send and what the `taccd` journal stores;
/// they are validated (`apply_command` rejects malformed ones with a
/// typed [`CommandError`]) and deterministic to apply at a given
/// simulation time.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Submit a task at the current platform time.
    Submit {
        /// The task schema.
        schema: TaskSchema,
        /// Oracle service requirement in seconds (ideal-execution time).
        service_secs: f64,
    },
    /// Cancel a job (no-op if it already reached a terminal state).
    Cancel {
        /// The job to cancel.
        job: JobId,
    },
    /// Reserve GPU capacity in advance: withhold `gpus` from the
    /// scheduler's availability profile over `[from_secs, until_secs)`.
    Reserve {
        /// GPUs to withhold.
        gpus: u32,
        /// Window start, seconds (absolute platform time).
        from_secs: f64,
        /// Window end, seconds (`f64::INFINITY` for open-ended).
        until_secs: f64,
    },
    /// Inject a fault on a node: every run currently placed there takes
    /// a node-failure hit (failover or fail, per policy).
    FaultNode {
        /// Node index.
        node: u32,
    },
    /// Drain a node for maintenance (running leases finish, nothing new
    /// is placed).
    Drain {
        /// Node index.
        node: u32,
    },
    /// Return a drained node to service.
    Undrain {
        /// Node index.
        node: u32,
    },
    /// Advance the platform clock by `secs`, processing due events.
    Advance {
        /// Seconds to advance (non-negative, finite).
        secs: f64,
    },
}

impl Command {
    /// Stable wire tag for this command kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Command::Submit { .. } => "submit",
            Command::Cancel { .. } => "cancel",
            Command::Reserve { .. } => "reserve",
            Command::FaultNode { .. } => "fault-node",
            Command::Drain { .. } => "drain",
            Command::Undrain { .. } => "undrain",
            Command::Advance { .. } => "advance",
        }
    }
}

/// One journalled command: the command plus the daemon-assigned sequence
/// number and timestamp. Replaying records in sequence order through
/// [`Platform::apply_record`] reconstructs the exact platform state.
#[derive(Debug, Clone, PartialEq)]
pub struct CommandRecord {
    /// Monotone journal sequence number (0-based).
    pub seq: u64,
    /// Platform time the command was applied at, seconds.
    pub at_secs: f64,
    /// The command itself.
    pub command: Command,
}

/// What applying a command did.
#[derive(Debug, Clone, PartialEq)]
pub enum CommandOutcome {
    /// A job was minted for the submission.
    Submitted {
        /// The new job's id.
        job: JobId,
    },
    /// Cancellation was delivered. `applied` is `false` when the job had
    /// already reached a terminal state (cancel is then a no-op).
    Cancelled {
        /// The cancelled job.
        job: JobId,
        /// Whether the job actually left the system because of this.
        applied: bool,
    },
    /// The reservation window was registered with the planner.
    Reserved,
    /// The node fault was delivered; `jobs` are the runs it hit.
    NodeFaulted {
        /// The faulted node.
        node: NodeId,
        /// Jobs whose active run was on the node, in id order.
        jobs: Vec<JobId>,
    },
    /// The node is now draining.
    Drained {
        /// The drained node.
        node: NodeId,
    },
    /// The node is back in service.
    Undrained {
        /// The restored node.
        node: NodeId,
    },
    /// The clock advanced; `now_secs` is the new platform time.
    Advanced {
        /// Platform time after the advance, seconds.
        now_secs: f64,
    },
}

/// Why a command was rejected. Every variant is a client error: the
/// platform state is unchanged and the command must not be journalled.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CommandError {
    /// The task schema failed validation (or the service time is not a
    /// positive finite number, or the group is outside the roster).
    InvalidTask(String),
    /// The job id names no job this platform ever minted.
    UnknownJob(JobId),
    /// The node index is outside the cluster.
    UnknownNode(u32),
    /// The reservation window is malformed (zero/oversized GPU count,
    /// non-finite start, or an end not after the start).
    InvalidReservation(String),
    /// A record's timestamp is earlier than the platform clock — the
    /// journal is corrupt or out of order.
    TimeRegression {
        /// Current platform time, seconds.
        now_secs: f64,
        /// The offending record timestamp, seconds.
        at_secs: f64,
    },
    /// The advance amount is negative, NaN or infinite.
    InvalidAdvance(f64),
}

impl CommandError {
    /// Stable wire tag for this error kind.
    pub fn kind(&self) -> &'static str {
        match self {
            CommandError::InvalidTask(_) => "invalid-task",
            CommandError::UnknownJob(_) => "unknown-job",
            CommandError::UnknownNode(_) => "unknown-node",
            CommandError::InvalidReservation(_) => "invalid-reservation",
            CommandError::TimeRegression { .. } => "time-regression",
            CommandError::InvalidAdvance(_) => "invalid-advance",
        }
    }
}

impl fmt::Display for CommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommandError::InvalidTask(why) => write!(f, "invalid task: {why}"),
            CommandError::UnknownJob(id) => write!(f, "unknown job {id}"),
            CommandError::UnknownNode(n) => write!(f, "unknown node index {n}"),
            CommandError::InvalidReservation(why) => write!(f, "invalid reservation: {why}"),
            CommandError::TimeRegression { now_secs, at_secs } => write!(
                f,
                "time regression: record stamped t={at_secs}s but the platform is at t={now_secs}s"
            ),
            CommandError::InvalidAdvance(secs) => {
                write!(
                    f,
                    "invalid advance of {secs}s: must be finite and non-negative"
                )
            }
        }
    }
}

impl std::error::Error for CommandError {}

impl Platform {
    /// Applies one command at the current platform time.
    ///
    /// This is the single external-ingestion entry point: the DES-driven
    /// harnesses, the `taccd` daemon and journal replay all funnel
    /// through here, so live operation and crash recovery take literally
    /// the same code path.
    ///
    /// # Errors
    ///
    /// A typed [`CommandError`] when validation fails; the platform is
    /// unchanged in that case.
    pub fn apply_command(&mut self, command: &Command) -> Result<CommandOutcome, CommandError> {
        match command {
            Command::Submit {
                schema,
                service_secs,
            } => {
                schema.validate().map_err(CommandError::InvalidTask)?;
                if schema.group.index() >= self.config.roster.len() {
                    return Err(CommandError::InvalidTask(format!(
                        "group {} is outside the {}-group roster",
                        schema.group,
                        self.config.roster.len()
                    )));
                }
                if !(*service_secs > 0.0 && service_secs.is_finite()) {
                    return Err(CommandError::InvalidTask(format!(
                        "service time {service_secs}s must be positive and finite"
                    )));
                }
                let job = self.submit_schema(schema.clone(), *service_secs);
                Ok(CommandOutcome::Submitted { job })
            }
            Command::Cancel { job } => {
                if self.jobs.get(*job).is_none() {
                    return Err(CommandError::UnknownJob(*job));
                }
                let applied = self.cancel_job(*job);
                Ok(CommandOutcome::Cancelled { job: *job, applied })
            }
            Command::Reserve {
                gpus,
                from_secs,
                until_secs,
            } => {
                let total = self.cluster.total_gpus();
                if *gpus == 0 || *gpus > total {
                    return Err(CommandError::InvalidReservation(format!(
                        "{gpus} GPUs (cluster has {total})"
                    )));
                }
                if !from_secs.is_finite() || *from_secs < 0.0 {
                    return Err(CommandError::InvalidReservation(format!(
                        "start t={from_secs}s must be finite and non-negative"
                    )));
                }
                // NaN ends must land in the error arm too, so compare
                // via partial_cmp rather than a negated `>`.
                if until_secs.partial_cmp(from_secs) != Some(std::cmp::Ordering::Greater) {
                    return Err(CommandError::InvalidReservation(format!(
                        "end t={until_secs}s must be after start t={from_secs}s"
                    )));
                }
                self.scheduler.reserve_capacity(CapacityWindow {
                    gpus: *gpus,
                    from_secs: *from_secs,
                    until_secs: *until_secs,
                });
                // The availability profile changed; backfill shadows may
                // now block (or unblock) differently.
                self.run_round();
                Ok(CommandOutcome::Reserved)
            }
            Command::FaultNode { node } => {
                if (*node as usize) >= self.cluster.node_count() {
                    return Err(CommandError::UnknownNode(*node));
                }
                let node = NodeId::from_index(*node as usize);
                let jobs = self.fault_node(node);
                Ok(CommandOutcome::NodeFaulted { node, jobs })
            }
            Command::Drain { node } => {
                if (*node as usize) >= self.cluster.node_count() {
                    return Err(CommandError::UnknownNode(*node));
                }
                let node = NodeId::from_index(*node as usize);
                self.drain_node(node);
                Ok(CommandOutcome::Drained { node })
            }
            Command::Undrain { node } => {
                if (*node as usize) >= self.cluster.node_count() {
                    return Err(CommandError::UnknownNode(*node));
                }
                let node = NodeId::from_index(*node as usize);
                self.undrain_node(node);
                Ok(CommandOutcome::Undrained { node })
            }
            Command::Advance { secs } => {
                if !(secs.is_finite() && *secs >= 0.0) {
                    return Err(CommandError::InvalidAdvance(*secs));
                }
                let until = self.clock.now() + tacc_sim::SimDuration::from_secs(*secs);
                self.run_until(until);
                Ok(CommandOutcome::Advanced {
                    now_secs: self.clock.now().as_secs(),
                })
            }
        }
    }

    /// Replays one journalled record: advances the clock to the record's
    /// timestamp (processing any due DES events), then applies the
    /// command — exactly what the daemon did when it first accepted it.
    ///
    /// # Errors
    ///
    /// [`CommandError::TimeRegression`] when the record is stamped
    /// before the current platform time (a corrupt or reordered
    /// journal), or any validation error from
    /// [`Platform::apply_command`].
    pub fn apply_record(&mut self, record: &CommandRecord) -> Result<CommandOutcome, CommandError> {
        let now = self.clock.now().as_secs();
        if record.at_secs < now {
            return Err(CommandError::TimeRegression {
                now_secs: now,
                at_secs: record.at_secs,
            });
        }
        self.run_until(SimTime::from_secs(record.at_secs));
        self.apply_command(&record.command)
    }

    /// The full transition log as JSONL — the byte-reproduction target
    /// for journal replay (see DESIGN.md, "Service mode & write-ahead
    /// journal").
    pub fn transition_log_jsonl(&self) -> String {
        self.transitions_jsonl()
    }
}

// --------------------------------------------------------------------
// JSON codec (hand-rolled; see crate::wire for why serde is not used)
// --------------------------------------------------------------------

impl Command {
    /// Serializes the command to its wire/journal JSON value.
    pub fn to_json(&self) -> Json {
        match self {
            Command::Submit {
                schema,
                service_secs,
            } => obj(vec![
                ("kind", Json::Str("submit".to_owned())),
                ("service_secs", Json::Num(*service_secs)),
                ("schema", schema_to_json(schema)),
            ]),
            Command::Cancel { job } => obj(vec![
                ("kind", Json::Str("cancel".to_owned())),
                ("job", Json::Num(job.value() as f64)),
            ]),
            Command::Reserve {
                gpus,
                from_secs,
                until_secs,
            } => obj(vec![
                ("kind", Json::Str("reserve".to_owned())),
                ("gpus", Json::Num(f64::from(*gpus))),
                ("from_secs", Json::Num(*from_secs)),
                ("until_secs", Json::Num(*until_secs)),
            ]),
            Command::FaultNode { node } => obj(vec![
                ("kind", Json::Str("fault-node".to_owned())),
                ("node", Json::Num(f64::from(*node))),
            ]),
            Command::Drain { node } => obj(vec![
                ("kind", Json::Str("drain".to_owned())),
                ("node", Json::Num(f64::from(*node))),
            ]),
            Command::Undrain { node } => obj(vec![
                ("kind", Json::Str("undrain".to_owned())),
                ("node", Json::Num(f64::from(*node))),
            ]),
            Command::Advance { secs } => obj(vec![
                ("kind", Json::Str("advance".to_owned())),
                ("secs", Json::Num(*secs)),
            ]),
        }
    }

    /// Parses a command from its wire/journal JSON value.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed field.
    pub fn from_json(value: &Json) -> Result<Command, String> {
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("command missing string field 'kind'")?;
        match kind {
            "submit" => {
                let service_secs = req_f64(value, "service_secs")?;
                let schema =
                    schema_from_json(value.get("schema").ok_or("submit missing field 'schema'")?)?;
                Ok(Command::Submit {
                    schema,
                    service_secs,
                })
            }
            "cancel" => Ok(Command::Cancel {
                job: JobId::from_value(req_u64(value, "job")?),
            }),
            "reserve" => Ok(Command::Reserve {
                gpus: req_u32(value, "gpus")?,
                from_secs: req_f64(value, "from_secs")?,
                until_secs: req_f64(value, "until_secs")?,
            }),
            "fault-node" => Ok(Command::FaultNode {
                node: req_u32(value, "node")?,
            }),
            "drain" => Ok(Command::Drain {
                node: req_u32(value, "node")?,
            }),
            "undrain" => Ok(Command::Undrain {
                node: req_u32(value, "node")?,
            }),
            "advance" => Ok(Command::Advance {
                secs: req_f64(value, "secs")?,
            }),
            other => Err(format!("unknown command kind '{other}'")),
        }
    }
}

impl CommandRecord {
    /// Serializes the record to its journal JSON value.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("seq", Json::Num(self.seq as f64)),
            ("at_secs", Json::Num(self.at_secs)),
            ("command", self.command.to_json()),
        ])
    }

    /// Parses a record from its journal JSON value.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed field.
    pub fn from_json(value: &Json) -> Result<CommandRecord, String> {
        Ok(CommandRecord {
            seq: req_u64(value, "seq")?,
            at_secs: req_f64(value, "at_secs")?,
            command: Command::from_json(
                value
                    .get("command")
                    .ok_or("record missing field 'command'")?,
            )?,
        })
    }
}

fn req_f64(value: &Json, key: &str) -> Result<f64, String> {
    value
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
}

fn req_u64(value: &Json, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn req_u32(value: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(req_u64(value, key)?).map_err(|_| format!("field '{key}' exceeds u32"))
}

fn req_str(value: &Json, key: &str) -> Result<String, String> {
    value
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

/// Serializes a [`TaskSchema`] to the wire JSON shape.
fn schema_to_json(schema: &TaskSchema) -> Json {
    let deps = schema
        .env
        .dependencies
        .iter()
        .map(|(name, mb)| Json::Arr(vec![Json::Str(name.clone()), Json::Num(f64::from(*mb))]))
        .collect();
    let dataset = match &schema.env.dataset {
        Some((name, mb)) => Json::Arr(vec![Json::Str(name.clone()), Json::Num(f64::from(*mb))]),
        None => Json::Null,
    };
    let model = match &schema.model {
        Some(m) => obj(vec![
            ("param_mb", Json::Num(m.param_mb)),
            ("compute_secs_per_iter", Json::Num(m.compute_secs_per_iter)),
        ]),
        None => Json::Null,
    };
    obj(vec![
        ("name", Json::Str(schema.name.clone())),
        ("group", Json::Num(schema.group.index() as f64)),
        ("workers", Json::Num(f64::from(schema.workers))),
        (
            "resources",
            obj(vec![
                ("gpus", Json::Num(f64::from(schema.resources.gpus))),
                (
                    "cpu_cores",
                    Json::Num(f64::from(schema.resources.cpu_cores)),
                ),
                ("mem_gb", Json::Num(f64::from(schema.resources.mem_gb))),
            ]),
        ),
        ("qos", Json::Str(schema.qos.to_string())),
        ("task_kind", Json::Str(schema.kind.to_string())),
        ("runtime", Json::Str(runtime_tag(schema.runtime).to_owned())),
        (
            "env",
            obj(vec![
                ("image", Json::Str(schema.env.image.clone())),
                ("dependencies", Json::Arr(deps)),
                ("dataset", dataset),
                ("code_mb", Json::Num(f64::from(schema.env.code_mb))),
            ]),
        ),
        ("est_duration_secs", Json::Num(schema.est_duration_secs)),
        ("model", model),
        ("elastic", Json::Bool(schema.elastic)),
    ])
}

fn runtime_tag(runtime: RuntimePreference) -> &'static str {
    match runtime {
        RuntimePreference::Auto => "auto",
        RuntimePreference::AllReduce => "all-reduce",
        RuntimePreference::ParameterServer => "parameter-server",
        RuntimePreference::InNetworkAggregation => "in-network-aggregation",
        RuntimePreference::SingleProcess => "single-process",
    }
}

/// Parses a [`TaskSchema`] from the wire JSON shape.
fn schema_from_json(value: &Json) -> Result<TaskSchema, String> {
    let qos = match req_str(value, "qos")?.as_str() {
        "guaranteed" => QosClass::Guaranteed,
        "best-effort" => QosClass::BestEffort,
        other => return Err(format!("unknown qos '{other}'")),
    };
    let kind = match req_str(value, "task_kind")?.as_str() {
        "training" => TaskKind::Training,
        "interactive" => TaskKind::Interactive,
        "inference" => TaskKind::Inference,
        "cpu-batch" => TaskKind::CpuBatch,
        other => return Err(format!("unknown task kind '{other}'")),
    };
    let runtime = match req_str(value, "runtime")?.as_str() {
        "auto" => RuntimePreference::Auto,
        "all-reduce" => RuntimePreference::AllReduce,
        "parameter-server" => RuntimePreference::ParameterServer,
        "in-network-aggregation" => RuntimePreference::InNetworkAggregation,
        "single-process" => RuntimePreference::SingleProcess,
        other => return Err(format!("unknown runtime '{other}'")),
    };
    let res = value
        .get("resources")
        .ok_or("schema missing field 'resources'")?;
    let resources = tacc_cluster::ResourceVec {
        gpus: req_u32(res, "gpus")?,
        cpu_cores: req_u32(res, "cpu_cores")?,
        mem_gb: req_u32(res, "mem_gb")?,
    };
    let env_v = value.get("env").ok_or("schema missing field 'env'")?;
    let mut dependencies = Vec::new();
    for dep in env_v
        .get("dependencies")
        .and_then(Json::as_arr)
        .ok_or("env missing array field 'dependencies'")?
    {
        dependencies.push(pair_from_json(dep).ok_or("malformed dependency entry")?);
    }
    let dataset = match env_v.get("dataset") {
        Some(Json::Null) | None => None,
        Some(v) => Some(pair_from_json(v).ok_or("malformed dataset entry")?),
    };
    let env = RuntimeEnv {
        image: req_str(env_v, "image")?,
        dependencies,
        dataset,
        code_mb: req_u32(env_v, "code_mb")?,
    };
    let model = match value.get("model") {
        Some(Json::Null) | None => None,
        Some(m) => Some(ModelProfile {
            param_mb: req_f64(m, "param_mb")?,
            compute_secs_per_iter: req_f64(m, "compute_secs_per_iter")?,
        }),
    };
    Ok(TaskSchema {
        name: req_str(value, "name")?,
        group: GroupId::from_index(
            usize::try_from(req_u64(value, "group")?).map_err(|_| "group index overflow")?,
        ),
        workers: req_u32(value, "workers")?,
        resources,
        qos,
        kind,
        runtime,
        env,
        est_duration_secs: req_f64(value, "est_duration_secs")?,
        model,
        elastic: value
            .get("elastic")
            .and_then(Json::as_bool)
            .unwrap_or(false),
    })
}

fn pair_from_json(value: &Json) -> Option<(String, u32)> {
    let arr = value.as_arr()?;
    if arr.len() != 2 {
        return None;
    }
    let name = arr[0].as_str()?.to_owned();
    let mb = u32::try_from(arr[1].as_u64()?).ok()?;
    Some((name, mb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire;
    use crate::PlatformConfig;
    use tacc_workload::TaskSchema;

    fn schema() -> TaskSchema {
        TaskSchema::builder("cmd-unit", GroupId::from_index(0))
            .workers(2)
            .qos(QosClass::BestEffort)
            .model(ModelProfile::gpt2_like())
            .env(RuntimeEnv {
                image: "pytorch-2.1-cuda12".to_owned(),
                dependencies: vec![("torch".to_owned(), 800)],
                dataset: Some(("imagenet".to_owned(), 5000)),
                code_mb: 7,
            })
            .build()
            .expect("valid schema")
    }

    #[test]
    fn command_json_round_trips() {
        let commands = vec![
            Command::Submit {
                schema: schema(),
                service_secs: 1234.5,
            },
            Command::Cancel {
                job: JobId::from_value(7),
            },
            Command::Reserve {
                gpus: 64,
                from_secs: 3600.0,
                until_secs: f64::INFINITY,
            },
            Command::FaultNode { node: 3 },
            Command::Drain { node: 0 },
            Command::Undrain { node: 0 },
            Command::Advance { secs: 0.25 },
        ];
        for cmd in commands {
            let text = cmd.to_json().to_string();
            let back = Command::from_json(&wire::parse(&text).expect("parses")).expect("decodes");
            assert_eq!(cmd, back, "round trip failed for {text}");
        }
    }

    #[test]
    fn record_json_round_trips_bytes() {
        let record = CommandRecord {
            seq: 42,
            at_secs: 1.5,
            command: Command::Advance { secs: 10.0 },
        };
        let text = record.to_json().to_string();
        let back = CommandRecord::from_json(&wire::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(record, back);
        // Byte-stable re-encode — the journal invariant.
        assert_eq!(back.to_json().to_string(), text);
    }

    #[test]
    fn malformed_commands_are_rejected() {
        for text in [
            "{}",
            "{\"kind\":\"warp\"}",
            "{\"kind\":\"cancel\"}",
            "{\"kind\":\"cancel\",\"job\":-1}",
            "{\"kind\":\"submit\",\"service_secs\":10}",
            "{\"kind\":\"reserve\",\"gpus\":8,\"from_secs\":0}",
        ] {
            let v = wire::parse(text).expect("valid JSON");
            assert!(Command::from_json(&v).is_err(), "accepted {text}");
        }
    }

    #[test]
    fn apply_command_submit_cancel_advance() {
        let mut p = Platform::new(PlatformConfig::default());
        let out = p
            .apply_command(&Command::Submit {
                schema: schema(),
                service_secs: 600.0,
            })
            .expect("submits");
        let CommandOutcome::Submitted { job } = out else {
            panic!("expected Submitted, got {out:?}");
        };
        p.apply_command(&Command::Advance { secs: 30.0 })
            .expect("advances");
        let out = p.apply_command(&Command::Cancel { job }).expect("cancels");
        assert!(matches!(out, CommandOutcome::Cancelled { .. }));
        // Unknown job is a typed error.
        let err = p
            .apply_command(&Command::Cancel {
                job: JobId::from_value(999),
            })
            .expect_err("unknown job");
        assert_eq!(err.kind(), "unknown-job");
    }

    #[test]
    fn apply_command_validates() {
        let mut p = Platform::new(PlatformConfig::default());
        let mut bad = schema();
        bad.workers = 0;
        assert_eq!(
            p.apply_command(&Command::Submit {
                schema: bad,
                service_secs: 10.0
            })
            .expect_err("invalid")
            .kind(),
            "invalid-task"
        );
        let mut foreign = schema();
        foreign.group = GroupId::from_index(4096);
        assert_eq!(
            p.apply_command(&Command::Submit {
                schema: foreign,
                service_secs: 10.0
            })
            .expect_err("bad group")
            .kind(),
            "invalid-task"
        );
        assert_eq!(
            p.apply_command(&Command::Reserve {
                gpus: 0,
                from_secs: 0.0,
                until_secs: 10.0
            })
            .expect_err("zero gpus")
            .kind(),
            "invalid-reservation"
        );
        assert_eq!(
            p.apply_command(&Command::FaultNode { node: 9999 })
                .expect_err("bad node")
                .kind(),
            "unknown-node"
        );
        assert_eq!(
            p.apply_command(&Command::Advance { secs: -1.0 })
                .expect_err("negative advance")
                .kind(),
            "invalid-advance"
        );
    }

    #[test]
    fn replayed_records_byte_reproduce_transitions() {
        let records = vec![
            CommandRecord {
                seq: 0,
                at_secs: 0.0,
                command: Command::Submit {
                    schema: schema(),
                    service_secs: 120.0,
                },
            },
            CommandRecord {
                seq: 1,
                at_secs: 5.0,
                command: Command::Submit {
                    schema: schema(),
                    service_secs: 240.0,
                },
            },
            CommandRecord {
                seq: 2,
                at_secs: 50.0,
                command: Command::Reserve {
                    gpus: 16,
                    from_secs: 100.0,
                    until_secs: 200.0,
                },
            },
            CommandRecord {
                seq: 3,
                at_secs: 600.0,
                command: Command::Advance { secs: 60.0 },
            },
        ];
        let run = |records: &[CommandRecord]| {
            let mut p = Platform::new(PlatformConfig::default());
            for r in records {
                p.apply_record(r).expect("applies");
            }
            p.transition_log_jsonl()
        };
        assert_eq!(run(&records), run(&records));
    }

    #[test]
    fn apply_record_rejects_time_regression() {
        let mut p = Platform::new(PlatformConfig::default());
        p.apply_command(&Command::Advance { secs: 100.0 })
            .expect("advances");
        let err = p
            .apply_record(&CommandRecord {
                seq: 0,
                at_secs: 50.0,
                command: Command::Advance { secs: 0.0 },
            })
            .expect_err("regression");
        assert_eq!(err.kind(), "time-regression");
    }

    #[test]
    fn fault_node_command_hits_running_jobs() {
        let mut p = Platform::new(PlatformConfig::default());
        let out = p
            .apply_command(&Command::Submit {
                schema: schema(),
                service_secs: 3600.0,
            })
            .expect("submits");
        let CommandOutcome::Submitted { job } = out else {
            panic!("expected Submitted");
        };
        // Let compilation finish and the job start.
        p.apply_command(&Command::Advance { secs: 600.0 })
            .expect("advances");
        let nodes = p.job_status(job).expect("status").nodes;
        assert!(!nodes.is_empty(), "job should be running");
        let out = p
            .apply_command(&Command::FaultNode {
                node: u32::try_from(nodes[0].index()).expect("small index"),
            })
            .expect("faults");
        let CommandOutcome::NodeFaulted { jobs, .. } = out else {
            panic!("expected NodeFaulted");
        };
        assert!(jobs.contains(&job));
    }
}
