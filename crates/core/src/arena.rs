//! Dense per-job storage: one arena slot per submitted job.
//!
//! Job ids are minted by the platform from a monotone counter and jobs
//! are never removed (terminal jobs stay queryable for `tcloud`), so the
//! id value *is* a dense index. That turns the six per-job `BTreeMap`
//! tables the platform used to keep — job, runtime preference, active
//! run, last nodes, run token, log — into one `Vec` of [`JobSlot`]s:
//! every lookup on the hot path becomes a bounds-checked index instead
//! of a tree walk, and iteration in id order (which the goodput fold and
//! `job_ids()` rely on) is just slot order.

use tacc_cluster::NodeId;
use tacc_workload::{Job, JobId, RuntimePreference};

use crate::accounting::JobLog;
use crate::platform::ActiveRun;

/// Everything the platform tracks about one job, colocated in one slot.
#[derive(Debug)]
pub(crate) struct JobSlot {
    pub(crate) job: Job,
    /// Runtime preference after compilation (and after any failover).
    pub(crate) runtime: RuntimePreference,
    /// The current run, if the job is executing right now.
    pub(crate) active: Option<ActiveRun>,
    /// Last distinct nodes the job ran on (survives completion, for
    /// `tcloud get`).
    pub(crate) last_nodes: Vec<NodeId>,
    /// Run token; bumped on every enter/leave of `Running` to invalidate
    /// in-flight `Finish`/`Fault` events aimed at a previous run.
    pub(crate) token: u64,
    /// Bounded platform-side log ring.
    pub(crate) log: JobLog,
}

/// The dense job arena. Slots are indexed by `JobId::value()`; ids are
/// dense and never freed, so no generation tag is needed (unlike the
/// lease arena in `tacc-cluster`, whose slots are recycled).
#[derive(Debug, Default)]
pub(crate) struct JobArena {
    slots: Vec<JobSlot>,
}

impl JobArena {
    pub(crate) fn new() -> Self {
        JobArena::default()
    }

    /// Number of jobs ever submitted (slots are never removed).
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Appends the slot for a freshly minted job. The id must be the
    /// next dense value — the platform mints ids from the same counter,
    /// so a mismatch is a platform bug.
    pub(crate) fn push(&mut self, job: Job) {
        debug_assert_eq!(
            job.id().value(),
            self.slots.len() as u64,
            "job ids must be minted densely"
        );
        self.slots.push(JobSlot {
            job,
            runtime: RuntimePreference::Auto,
            active: None,
            last_nodes: Vec::new(),
            token: 0,
            log: JobLog::default(),
        });
    }

    pub(crate) fn get(&self, id: JobId) -> Option<&JobSlot> {
        self.slots.get(usize::try_from(id.value()).ok()?)
    }

    pub(crate) fn get_mut(&mut self, id: JobId) -> Option<&mut JobSlot> {
        self.slots.get_mut(usize::try_from(id.value()).ok()?)
    }

    /// All slots in ascending id order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (JobId, &JobSlot)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, slot)| (JobId::from_value(i as u64), slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacc_workload::{GroupId, TaskSchema};

    fn job(v: u64) -> Job {
        let schema = TaskSchema::builder("arena-unit", GroupId::from_index(0))
            .build()
            .expect("valid schema");
        Job::new(JobId::from_value(v), schema, 0.0, 10.0)
    }

    #[test]
    fn slots_index_by_id_value() {
        let mut arena = JobArena::new();
        arena.push(job(0));
        arena.push(job(1));
        arena.push(job(2));
        assert_eq!(arena.len(), 3);
        for v in 0..3 {
            let id = JobId::from_value(v);
            assert_eq!(arena.get(id).map(|s| s.job.id()), Some(id));
        }
        assert!(arena.get(JobId::from_value(3)).is_none());
        assert!(arena.get(JobId::from_value(u64::MAX)).is_none());
    }

    #[test]
    fn iter_is_id_ordered() {
        let mut arena = JobArena::new();
        for v in 0..5 {
            arena.push(job(v));
        }
        let ids: Vec<u64> = arena.iter().map(|(id, _)| id.value()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn slot_state_mutates_in_place() {
        let mut arena = JobArena::new();
        arena.push(job(0));
        let id = JobId::from_value(0);
        let slot = arena.get_mut(id).expect("slot exists");
        slot.token = 3;
        slot.last_nodes = vec![NodeId::from_index(1)];
        assert_eq!(arena.get(id).map(|s| s.token), Some(3));
        assert_eq!(arena.get(id).map(|s| s.last_nodes.len()), Some(1));
    }
}
