//! Observability surface: span timelines and the ML Productivity
//! Goodput decomposition, folded by `tacc-obs` from the lifecycle
//! engine's transition stream.
//!
//! Everything here is a read model over sim-time data the engine
//! already recorded, so timelines and goodput reports are deterministic
//! and replayable: reconstructing the span book from an exported
//! transition JSONL (`Platform::transitions_jsonl`) yields byte-for-byte
//! the same [`Platform::timelines_jsonl`] output — provided the bounded
//! transition ring never dropped a record
//! (`Platform::transitions_dropped`).

use std::collections::BTreeMap;

use tacc_obs::{GoodputReport, JobGoodputInput, Span, SpanBook};
use tacc_workload::JobId;

use crate::platform::Platform;

impl Platform {
    /// The folded span book (read-only).
    pub fn span_book(&self) -> &SpanBook {
        &self.spans
    }

    /// Horizon the open spans are virtually closed at: current sim time,
    /// matching [`Platform::report`]'s accounting horizon. Replay
    /// consumers rebuilding timelines from an exported transition stream
    /// must close at this same horizon to reproduce
    /// [`Platform::timelines_jsonl`] byte-for-byte.
    pub fn span_horizon(&self) -> f64 {
        self.clock.now().as_secs().max(1e-9)
    }

    /// One job's span timeline as of the current sim time (empty for
    /// unknown jobs).
    pub fn timeline(&self, job: JobId) -> Vec<Span> {
        self.spans.timeline(job, self.span_horizon())
    }

    /// Byte-deterministic JSONL of every job's spans as of the current
    /// sim time, jobs ascending.
    pub fn timelines_jsonl(&self) -> String {
        self.spans.to_jsonl(self.span_horizon())
    }

    /// Per-job GPU weights and accumulated useful service seconds — the
    /// two quantities the span stream cannot carry. Weights are the
    /// *requested* gang size (elastic gangs running shrunken are charged
    /// at full weight; documented approximation), so CPU-only tasks
    /// weigh zero GPU-seconds.
    pub(crate) fn goodput_inputs(&self) -> BTreeMap<JobId, JobGoodputInput> {
        self.jobs
            .iter()
            .map(|(id, slot)| {
                let job = &slot.job;
                (
                    id,
                    JobGoodputInput {
                        gpus: f64::from(job.schema().total_gpus()),
                        useful_secs: (job.service_secs() - job.remaining_secs()).max(0.0),
                    },
                )
            })
            .collect()
    }

    /// The ML Productivity Goodput decomposition as of the current sim
    /// time: `availability × throughput_efficiency × (1 − badput)` with
    /// badput itemized by cause. Also refreshes the `tacc_obs_goodput_*`
    /// gauges.
    pub fn goodput(&self) -> GoodputReport {
        let report = GoodputReport::compute(
            &self.spans,
            self.span_horizon(),
            f64::from(self.cluster.total_gpus()),
            &self.goodput_inputs(),
        );
        self.metrics.goodput_ratio.set(report.goodput);
        self.metrics.goodput_availability.set(report.availability);
        self.metrics
            .goodput_efficiency
            .set(report.throughput_efficiency);
        self.metrics.goodput_badput.set(report.badput_fraction);
        report
    }

    /// Watermark-syncs the `tacc_obs_dropped_*` counters from the
    /// bounded rings' lifetime drop counts (monotone, so the difference
    /// since the last sync is added). Called before every metrics
    /// scrape.
    pub(crate) fn sync_obs_drop_counters(&self) {
        let events = self
            .bus
            .dropped()
            .saturating_sub(self.metrics.dropped_events.get());
        self.metrics.dropped_events.inc_by(events);
        let transitions = self
            .transitions_dropped()
            .saturating_sub(self.metrics.dropped_transitions.get());
        self.metrics.dropped_transitions.inc_by(transitions);
    }
}
