//! Read-only status surface: everything `tcloud` asks the platform
//! about a job — status snapshots, `why` explanations, artifacts,
//! storage stats, and the bounded per-job logs. Nothing here mutates
//! platform state.

use tacc_cluster::NodeId;
use tacc_workload::{JobId, JobState};

use crate::platform::Platform;

/// A snapshot of one job's lifecycle, as reported to clients.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The job id.
    pub id: JobId,
    /// Lifecycle state.
    pub state: JobState,
    /// Task name from the schema.
    pub name: String,
    /// Nodes the job currently runs on (empty unless running).
    pub nodes: Vec<NodeId>,
    /// Submission time, seconds.
    pub submit_secs: f64,
    /// Remaining service time, seconds.
    pub remaining_secs: f64,
    /// Times preempted so far.
    pub preemptions: u32,
}

impl Platform {
    /// Client-facing status snapshot of a job.
    pub fn job_status(&self, id: JobId) -> Option<JobStatus> {
        let slot = self.jobs.get(id)?;
        let job = &slot.job;
        let nodes = slot
            .active
            .as_ref()
            .map(|r| {
                let mut n = r.worker_nodes.clone();
                n.sort_unstable();
                n.dedup();
                n
            })
            .unwrap_or_default();
        Some(JobStatus {
            id,
            state: job.state(),
            name: job.schema().name.clone(),
            nodes,
            submit_secs: job.submit_secs(),
            remaining_secs: job.remaining_secs(),
            preemptions: job.preemptions(),
        })
    }

    /// Explains a job's current situation — the answer `tcloud why`
    /// prints. For a waiting job this is the scheduler's most recent skip
    /// reason (quota exhausted, no feasible placement, blocked backfill
    /// window, head-of-line blocking); otherwise the job's most recent
    /// lifecycle transition from the transition log (falling back to the
    /// event bus if the ring already evicted it).
    pub fn why(&self, id: JobId) -> Option<String> {
        let job = &self.jobs.get(id)?.job;
        match job.state() {
            JobState::Submitted => {
                Some("provisioning: the compiler layer is preparing the task".to_owned())
            }
            JobState::Queued | JobState::Preempted => {
                match self.scheduler.decision_trace().latest_skip(id) {
                    Some((at, reason)) => Some(format!("waiting since t={at:.0}s: {reason}")),
                    None => Some("queued: no scheduling round has evaluated it yet".to_owned()),
                }
            }
            JobState::Running | JobState::Completed | JobState::Failed | JobState::Cancelled => {
                match self.transitions(id).last() {
                    Some(r) => Some(format!(
                        "t={:.0}s: {} \u{2192} {} ({})",
                        r.at_secs, r.from, r.to, r.event
                    )),
                    None => match self.bus.for_job(id).last() {
                        Some(rec) => Some(format!("t={:.0}s: {}", rec.at_secs, rec.event)),
                        None => Some(format!("{:?}", job.state())),
                    },
                }
            }
        }
    }

    /// The output artifacts a job left on its nodes — what `tcloud get`
    /// retrieves. One entry per `(node, file, size-MiB)`; empty until the
    /// job has run at least once. Sizes are deterministic per job so
    /// retrieval output is reproducible.
    pub fn job_artifacts(&self, id: JobId) -> Vec<(NodeId, String, u32)> {
        let Some(slot) = self.jobs.get(id) else {
            return Vec::new();
        };
        let nodes = &slot.last_nodes;
        let checkpoint_mb = slot
            .job
            .schema()
            .model
            .map(|m| m.param_mb as u32)
            .unwrap_or(50);
        let mut out = Vec::new();
        for (rank, &node) in nodes.iter().enumerate() {
            out.push((
                node,
                format!("worker-{rank}.log"),
                1 + (id.value() % 7) as u32,
            ));
            if rank == 0 {
                out.push((node, "checkpoint.pt".to_owned(), checkpoint_mb));
                out.push((node, "metrics.jsonl".to_owned(), 2));
            }
        }
        out
    }

    /// Shared-store totals: `(MiB staged from the backend, node-cache
    /// hits)`. `None` when the storage model is disabled.
    pub fn storage_stats(&self) -> Option<(u64, u64)> {
        self.store
            .as_ref()
            .map(|s| (s.total_staged_mb(), s.cache_hits()))
    }

    /// The platform-side log of a job (what `tcloud logs` aggregates).
    /// Bounded: once a job accumulates more than
    /// [`crate::PlatformConfig::log_lines_per_job`] lines, the oldest are
    /// evicted ([`Self::job_log_dropped`] counts them).
    pub fn job_log(&self, id: JobId) -> &[(f64, String)] {
        self.jobs
            .get(id)
            .map(|slot| slot.log.lines.as_slice())
            .unwrap_or(&[])
    }

    /// Lines evicted from the job's bounded log ring.
    pub fn job_log_dropped(&self, id: JobId) -> u64 {
        self.jobs.get(id).map(|slot| slot.log.dropped).unwrap_or(0)
    }
}
