//! Platform configuration.

use tacc_cluster::{ClusterSpec, GpuModel};
use tacc_compiler::CompilerConfig;
use tacc_exec::{CheckpointPolicy, ExecConfig, FailoverPolicy};
use tacc_sched::{QuotaMode, SchedulerConfig};
use tacc_storage::StorageConfig;
use tacc_workload::GroupRoster;

/// Everything needed to stand up a [`crate::Platform`].
///
/// The default is the canonical experiment setup: a 32-node / 256-GPU A100
/// cluster in 4 racks, the 8-group campus roster, FIFO + EASY backfill +
/// packing placement, borrowing quotas disabled (enable per experiment),
/// default compiler cache and execution model, 10-minute checkpoints, no
/// failure injection.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// The cluster to build.
    pub cluster: ClusterSpec,
    /// The tenant groups sharing it.
    pub roster: GroupRoster,
    /// Scheduling-layer configuration. Quotas and group count are filled
    /// from `roster` automatically when the quota mode is not `Disabled`
    /// and no quotas were given.
    pub scheduler: SchedulerConfig,
    /// Compiler-layer configuration.
    pub compiler: CompilerConfig,
    /// Execution-model configuration.
    pub exec: ExecConfig,
    /// Checkpointing policy applied to every job.
    pub checkpoint: CheckpointPolicy,
    /// What happens when a node faults under a running job.
    pub failover: FailoverPolicy,
    /// Shared-filesystem model for dataset staging; `None` makes staging
    /// free (ablation baseline).
    pub storage: Option<StorageConfig>,
    /// Per-node MTBF in seconds; `None` disables failure injection.
    pub node_mtbf_secs: Option<f64>,
    /// Master seed for all randomness inside the platform.
    pub seed: u64,
    /// Safety valve: abort a run after this many processed events.
    pub max_events: u64,
    /// Capacity of the platform event bus ring. Oldest events are
    /// dropped past this bound; lifetime per-kind counts stay exact.
    pub event_buffer_capacity: usize,
    /// Per-job log ring capacity. Oldest lines are dropped past this
    /// bound; [`crate::Platform::job_log_dropped`] reports how many.
    pub log_lines_per_job: usize,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            cluster: ClusterSpec::uniform(4, 8, GpuModel::A100, 8),
            roster: GroupRoster::campus_default(256),
            scheduler: SchedulerConfig::default(),
            compiler: CompilerConfig::default(),
            exec: ExecConfig::default(),
            checkpoint: CheckpointPolicy::campus_default(),
            failover: FailoverPolicy::SwitchRuntime,
            storage: Some(StorageConfig::default()),
            node_mtbf_secs: None,
            seed: 42,
            max_events: 50_000_000,
            event_buffer_capacity: 262_144,
            log_lines_per_job: 256,
        }
    }
}

impl PlatformConfig {
    /// Resolves the scheduler configuration: quotas/group count come from
    /// the roster unless explicitly set.
    pub(crate) fn resolved_scheduler(&self) -> SchedulerConfig {
        let mut sched = self.scheduler.clone();
        if sched.quotas.is_empty() && sched.quota != QuotaMode::Disabled {
            sched = sched.with_roster(&self.roster);
        }
        if sched.group_count < self.roster.len() {
            sched.group_count = self.roster.len();
        }
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_consistent() {
        let c = PlatformConfig::default();
        assert_eq!(c.cluster.total_gpus(), 256);
        assert_eq!(c.roster.total_quota(), 256);
        assert!(c.node_mtbf_secs.is_none());
    }

    #[test]
    fn quota_mode_pulls_roster_quotas() {
        let mut c = PlatformConfig::default();
        c.scheduler.quota = QuotaMode::Borrowing;
        let resolved = c.resolved_scheduler();
        assert_eq!(resolved.quotas.len(), 8);
        assert_eq!(resolved.quotas.iter().sum::<u32>(), 256);
        assert_eq!(resolved.group_count, 8);
    }

    #[test]
    fn explicit_quotas_win() {
        let mut c = PlatformConfig::default();
        c.scheduler.quota = QuotaMode::Static;
        c.scheduler.quotas = vec![1; 8];
        let resolved = c.resolved_scheduler();
        assert_eq!(resolved.quotas, vec![1; 8]);
    }
}
