//! # tacc-core
//!
//! The full-stack shared ML cluster platform — the paper's primary
//! contribution, assembled from the four workflow-abstraction layers:
//!
//! | Layer | Crate | Role here |
//! |---|---|---|
//! | Task schema | [`tacc_workload`] | submissions arrive as [`TaskSchema`]s |
//! | Compiler | [`tacc_compiler`] | provisioning latency + delta cache |
//! | Scheduling | [`tacc_sched`] | policies, quota, backfill, preemption |
//! | Execution | [`tacc_exec`] | runtime selection, comm model, failures |
//!
//! [`Platform`] drives all of this over the deterministic event engine in
//! [`tacc_sim`] against the modelled cluster in [`tacc_cluster`]: tasks are
//! submitted (from a [`Trace`] or interactively), compiled, queued, placed,
//! stretched by their execution plan, possibly preempted or failed over,
//! and finally accounted in a [`SimulationReport`] — the object every
//! experiment harness reads its numbers from.
//!
//! ## Example
//!
//! ```
//! use tacc_core::{Platform, PlatformConfig};
//! use tacc_workload::{GenParams, TraceGenerator};
//!
//! let mut platform = Platform::new(PlatformConfig::default());
//! let trace = TraceGenerator::new(GenParams::default(), 1).generate_days(0.25);
//! let report = platform.run_trace(&trace);
//! assert_eq!(report.submitted, trace.len());
//! assert!(report.completed > 0);
//! ```
//!
//! [`TaskSchema`]: tacc_workload::TaskSchema
//! [`Trace`]: tacc_workload::Trace

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accounting;
mod admission;
mod arena;
mod command;
mod config;
mod faults;
mod lifecycle;
mod observability;
mod platform;
mod report;
mod status;
pub mod wire;

pub use command::{Command, CommandError, CommandOutcome, CommandRecord};
pub use config::PlatformConfig;
pub use lifecycle::{LifecycleError, TransitionRecord};
pub use platform::Platform;
pub use report::{GroupReport, SimulationReport};
pub use status::JobStatus;

// The parallel experiment runner (tacc-bench) replays platforms on worker
// threads; these guards fail the build if simulation state ever stops
// being thread-portable (e.g. by acquiring an `Rc` or a raw pointer).
const _: () = {
    const fn sendable<T: Send>() {}
    const fn shareable<T: Send + Sync>() {}
    sendable::<Platform>();
    shareable::<SimulationReport>();
    shareable::<PlatformConfig>();
};
