//! The platform: a thin event-loop orchestrator over the four layers.
//!
//! This file owns the platform *state* and the discrete-event loop; the
//! behavior lives in focused sibling modules, each an `impl Platform`
//! block:
//!
//! * [`crate::admission`] — submission front door, compilation, and
//!   quota/gang-feasibility rejection;
//! * [`crate::lifecycle`] — the job lifecycle engine: the **only** code
//!   that mutates [`Job`] state (via `JobState::transition`), plus the
//!   scheduling-round glue and the transition log;
//! * [`crate::accounting`] — group GPU-time accrual, interruption
//!   amounts, metrics handles, job logs, and cluster gauges;
//! * [`crate::faults`] — fault delivery, failover, checkpoint-restart;
//! * [`crate::observability`] — span timelines and the goodput
//!   decomposition folded from the transition stream;
//! * [`crate::status`] — client-facing read model (`tcloud` status,
//!   logs, why, artifacts).

use tacc_cluster::{Cluster, NodeId};
use tacc_compiler::Compiler;
use tacc_exec::{CheckpointPolicy, ExecModel, ExecTelemetry, FailoverPolicy, FailureInjector};
use tacc_metrics::UtilizationTracker;
use tacc_obs::{EventBus, EventRecord, MetricsRegistry, MetricsSnapshot, SpanBook, SpanConfig};
use tacc_sched::Scheduler;
use tacc_sim::{Clock, EventQueue, SimDuration, SimTime};
use tacc_storage::{SharedStore, Staging};
use tacc_workload::{Job, JobId, RuntimePreference, TaskSchema, Trace, TraceRecord};

use crate::accounting::CoreMetrics;
use crate::arena::JobArena;
use crate::config::PlatformConfig;
use crate::lifecycle::TransitionLog;
use crate::report::{CompletedJob, ReportInputs, SimulationReport};

/// Events the platform processes.
#[derive(Debug)]
pub(crate) enum Event {
    /// A trace submission becomes visible to the platform.
    Submit { record: usize },
    /// The compiler layer finished provisioning a task.
    CompileDone { job: JobId },
    /// A running job's execution plan predicts completion now.
    Finish { job: JobId, token: u64 },
    /// A node under a running job faults now.
    Fault {
        job: JobId,
        token: u64,
        node: NodeId,
    },
    /// The user kills this job now (from the trace's cancellation field).
    Cancel { job: JobId },
    /// A gang time-slice quantum expired; consider rotating.
    RotateCheck,
    /// A dataset staging finished; release its shared-store readers.
    StagingDone { staging: Staging },
}

/// Per-run state of a currently executing job.
#[derive(Debug, Clone)]
pub(crate) struct ActiveRun {
    pub(crate) start_secs: f64,
    /// Wall-time stretch over service time: slowdown × checkpoint overhead
    /// × elastic shrink factor (requested/granted workers).
    pub(crate) stretch: f64,
    /// GPUs actually held (granted gang), for utilization accounting.
    pub(crate) gpus: f64,
    /// Wall-clock restore penalty paid at the start of this run.
    pub(crate) resume_penalty: f64,
    pub(crate) worker_nodes: Vec<NodeId>,
    pub(crate) runtime: RuntimePreference,
}

/// The full-stack platform.
///
/// See the crate docs for the layer map. All methods are deterministic for
/// a given configuration, trace and seed.
#[derive(Debug)]
pub struct Platform {
    pub(crate) config: PlatformConfig,
    pub(crate) clock: Clock,
    pub(crate) events: EventQueue<Event>,
    pub(crate) cluster: Cluster,
    pub(crate) compiler: Compiler,
    pub(crate) scheduler: Scheduler,
    pub(crate) exec: ExecModel,
    pub(crate) checkpoint: CheckpointPolicy,
    pub(crate) failover: FailoverPolicy,
    pub(crate) injector: Option<FailureInjector>,
    pub(crate) store: Option<SharedStore>,

    pub(crate) pending_records: Vec<TraceRecord>,
    /// Dense per-job state: job, runtime, active run, last nodes, run
    /// token, log — one slot per minted id (see [`crate::arena`]).
    pub(crate) jobs: JobArena,
    pub(crate) next_job: u64,

    pub(crate) bus: EventBus,
    pub(crate) transitions: TransitionLog,
    pub(crate) spans: SpanBook,
    pub(crate) registry: MetricsRegistry,
    pub(crate) exec_telemetry: ExecTelemetry,
    pub(crate) metrics: CoreMetrics,
    pub(crate) last_alloc_failures: u64,

    pub(crate) util: UtilizationTracker,
    pub(crate) group_busy: Vec<f64>,
    pub(crate) group_gpu_secs: Vec<f64>,
    pub(crate) group_last_update: f64,
    pub(crate) completed: Vec<CompletedJob>,
    pub(crate) failed: u64,
    pub(crate) failed_waste_gpu_secs: f64,
    pub(crate) rejected: u64,
    pub(crate) cancelled: u64,
    pub(crate) staging_secs_total: f64,
    pub(crate) stagings: u64,
    pub(crate) faults: u64,
    pub(crate) failovers: u64,
    pub(crate) provisioning_latency_total: f64,
    pub(crate) events_processed: u64,
}

impl Platform {
    /// Builds a platform from configuration.
    pub fn new(config: PlatformConfig) -> Self {
        let cluster = Cluster::new(config.cluster.clone());
        let total_gpus = f64::from(cluster.total_gpus());
        let registry = MetricsRegistry::new();
        let mut scheduler = Scheduler::new(config.resolved_scheduler());
        scheduler.attach_registry(&registry);
        let mut compiler = Compiler::new(config.compiler);
        compiler.attach_registry(&registry);
        let exec_telemetry = ExecTelemetry::new(&registry);
        let metrics = CoreMetrics::new(&registry);
        let bus = EventBus::new(config.event_buffer_capacity);
        let transitions = TransitionLog::new(config.event_buffer_capacity);
        let spans = SpanBook::new(SpanConfig {
            restore_secs: config.checkpoint.restore_cost_secs(),
            checkpoint_overhead_fraction: config.checkpoint.overhead_fraction(),
        });
        let injector = config
            .node_mtbf_secs
            .map(|mtbf| FailureInjector::new(mtbf, config.seed ^ 0xFA17));
        let store = config
            .storage
            .map(|cfg| SharedStore::new(cfg, cluster.node_count()));
        let groups = config.roster.len();
        Platform {
            compiler,
            exec: ExecModel::new(config.exec),
            checkpoint: config.checkpoint,
            failover: config.failover,
            injector,
            store,
            scheduler,
            cluster,
            clock: Clock::new(),
            events: EventQueue::new(),
            pending_records: Vec::new(),
            jobs: JobArena::new(),
            next_job: 0,
            bus,
            transitions,
            spans,
            registry,
            exec_telemetry,
            metrics,
            last_alloc_failures: 0,
            util: UtilizationTracker::new(total_gpus),
            group_busy: vec![0.0; groups],
            group_gpu_secs: vec![0.0; groups],
            group_last_update: 0.0,
            completed: Vec::new(),
            failed: 0,
            failed_waste_gpu_secs: 0.0,
            rejected: 0,
            cancelled: 0,
            staging_secs_total: 0.0,
            stagings: 0,
            faults: 0,
            failovers: 0,
            provisioning_latency_total: 0.0,
            config,
            events_processed: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The cluster under management (read-only).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The scheduling layer (read-only).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The compiler layer (read-only; exposes cache stats).
    pub fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    /// Deterministic work counters across every layer: the scheduler's
    /// own counters plus the platform-layer structural counters the
    /// scheduler cannot see — job/lease arena churn, free-capacity-index
    /// re-keyings, and calendar-wheel traffic. This is what the perf
    /// harness records and CI gates on.
    pub fn work_counters(&self) -> tacc_sched::WorkCounters {
        let mut c = self.scheduler.work_counters();
        let (lease_allocs, lease_reuses) = self.cluster.lease_arena_stats();
        c.arena_alloc = lease_allocs + self.jobs.len() as u64;
        c.arena_reuse = lease_reuses;
        c.free_index_updates = self.cluster.free_index_updates();
        let wheel = self.events.wheel_stats();
        c.wheel_insert = wheel.inserts;
        c.wheel_cascade = wheel.cascades;
        c
    }

    /// Drains a node for maintenance: running leases finish normally but
    /// nothing new is placed there. Returns `false` for unknown nodes.
    pub fn drain_node(&mut self, node: NodeId) -> bool {
        self.cluster.drain(node)
    }

    /// Returns a drained node to service and immediately reschedules.
    pub fn undrain_node(&mut self, node: NodeId) -> bool {
        let ok = self.cluster.undrain(node);
        if ok {
            self.run_round();
        }
        ok
    }

    /// Looks up a job.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(id).map(|slot| &slot.job)
    }

    /// All job ids ever submitted, in submission order.
    pub fn job_ids(&self) -> Vec<JobId> {
        self.jobs.iter().map(|(id, _)| id).collect()
    }

    /// The platform event bus: every job state transition so far, stamped
    /// with simulated time and a monotone sequence number.
    pub fn events(&self) -> &EventBus {
        &self.bus
    }

    /// All buffered events for one job, oldest first.
    pub fn job_events(&self, id: JobId) -> Vec<EventRecord> {
        self.bus.for_job(id)
    }

    /// Snapshot of every operational metric registered by the four layers
    /// (`tacc_core_*`, `tacc_sched_*`, `tacc_compiler_*`, `tacc_exec_*`,
    /// `tacc_cluster_*`).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.sync_obs_drop_counters();
        self.registry.snapshot()
    }

    /// Prometheus text exposition of every operational metric.
    pub fn metrics_text(&self) -> String {
        self.sync_obs_drop_counters();
        self.registry.expose()
    }

    /// Schedules every record of `trace` for submission.
    pub fn load_trace(&mut self, trace: &Trace) {
        for record in trace.records() {
            let idx = self.pending_records.len();
            self.pending_records.push(record.clone());
            self.events.schedule(
                SimTime::from_secs(record.submit_secs),
                Event::Submit { record: idx },
            );
        }
    }

    /// Submits a task interactively at the current simulation time.
    ///
    /// `service_secs` is the oracle service requirement (what the task
    /// would need under ideal execution).
    pub fn submit_schema(&mut self, schema: TaskSchema, service_secs: f64) -> JobId {
        let record = TraceRecord {
            submit_secs: self.clock.now().as_secs(),
            schema,
            service_secs,
            cancel_after_secs: None,
        };
        let idx = self.pending_records.len();
        self.pending_records.push(record);
        let id = self.do_submit(idx);
        self.run_round();
        id
    }

    /// Schedules the user-cancellation event for a submitted record.
    pub(crate) fn schedule_cancel(&mut self, id: JobId, now: f64, after_secs: f64) {
        self.events.schedule(
            SimTime::from_secs(now) + SimDuration::from_secs(after_secs),
            Event::Cancel { job: id },
        );
    }

    /// Processes a single event; returns its timestamp, or `None` when the
    /// event queue is empty.
    pub fn step(&mut self) -> Option<SimTime> {
        let (at, event) = self.events.pop()?;
        self.clock.advance_to(at);
        self.events_processed += 1;
        assert!(
            self.events_processed <= self.config.max_events,
            "event budget exhausted ({}); runaway simulation?",
            self.config.max_events
        );
        self.handle(event);
        Some(at)
    }

    /// Runs until no events remain.
    pub fn run_until_idle(&mut self) {
        while self.step().is_some() {}
    }

    /// Runs events up to and including time `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(at) = self.events.peek_time() {
            if at > until {
                break;
            }
            self.step();
        }
        if self.clock.now() < until {
            self.clock.advance_to(until);
        }
    }

    /// Convenience: loads a trace, runs to completion, and reports.
    pub fn run_trace(&mut self, trace: &Trace) -> SimulationReport {
        self.load_trace(trace);
        self.run_until_idle();
        self.report()
    }

    /// Builds the simulation report for everything processed so far.
    pub fn report(&self) -> SimulationReport {
        let horizon = self.clock.now().as_secs().max(1e-9);
        let snapshot = self.registry.snapshot();
        let round_latency = snapshot
            .histogram("tacc_sched_round_latency_seconds")
            .cloned()
            .unwrap_or_default();
        SimulationReport::build(ReportInputs {
            completed: &self.completed,
            submitted: self.jobs.len(),
            failed: self.failed,
            failed_waste_gpu_hours: self.failed_waste_gpu_secs / 3600.0,
            rejected: self.rejected,
            cancelled: self.cancelled,
            staging_secs_total: self.staging_secs_total,
            stagings: self.stagings,
            faults: self.faults,
            failovers: self.failovers,
            preemptions: self.scheduler.preemption_count(),
            backfill_starts: self.scheduler.backfill_starts(),
            util: &self.util,
            horizon_secs: horizon,
            group_gpu_secs: &self.group_gpu_secs,
            group_count: self.config.roster.len(),
            cache: self.compiler.cache().stats(),
            provisioning_latency_total: self.provisioning_latency_total,
            compilations: self.compiler.compilations(),
            rounds: self.scheduler.rounds(),
            round_latency,
            events_recorded: self.bus.recorded(),
            events_dropped: self.bus.dropped(),
            goodput_decomposition: self.goodput(),
        })
    }

    /// Dispatches one simulation event to the owning module's handler.
    fn handle(&mut self, event: Event) {
        match event {
            Event::Submit { record } => {
                self.do_submit(record);
            }
            Event::CompileDone { job } => self.on_compile_done(job),
            Event::Finish { job, token } => self.on_finish(job, token),
            Event::Fault { job, token, node } => self.on_fault(job, token, node),
            Event::Cancel { job } => {
                // The user may already have seen the job finish; cancelling
                // a terminal job is a no-op.
                let _ = self.cancel_job(job);
            }
            Event::StagingDone { staging } => {
                if let Some(store) = &mut self.store {
                    store.end_staging(&staging);
                }
            }
            Event::RotateCheck => {
                let now = self.clock.now().as_secs();
                let outcome = self.scheduler.rotate(now, &mut self.cluster);
                if !outcome.is_empty() {
                    self.apply_decisions(&outcome, now);
                    // Freed + re-filled capacity may unblock more work.
                    self.run_round();
                }
            }
        }
    }
}
