//! The platform: four layers wired over the event engine.

use std::collections::BTreeMap;

use tacc_cluster::{Cluster, GpuModel, NodeId};
use tacc_compiler::Compiler;
use tacc_exec::{CheckpointPolicy, ExecModel, ExecTelemetry, FailoverPolicy, FailureInjector};
use tacc_metrics::UtilizationTracker;
use tacc_obs::{
    Counter, EventBus, EventRecord, Gauge, Histogram, MetricsRegistry, MetricsSnapshot,
    PlatformEvent, RejectReason,
};
use tacc_sched::{Scheduler, TaskRequest};
use tacc_sim::{Clock, EventQueue, SimDuration, SimTime};
use tacc_storage::{SharedStore, Staging};
use tacc_workload::{
    Job, JobId, JobState, RuntimePreference, TaskKind, TaskSchema, Trace, TraceRecord,
};

use crate::config::PlatformConfig;
use crate::report::{CompletedJob, ReportInputs, SimulationReport};

/// Events the platform processes.
#[derive(Debug)]
enum Event {
    /// A trace submission becomes visible to the platform.
    Submit { record: usize },
    /// The compiler layer finished provisioning a task.
    CompileDone { job: JobId },
    /// A running job's execution plan predicts completion now.
    Finish { job: JobId, token: u64 },
    /// A node under a running job faults now.
    Fault {
        job: JobId,
        token: u64,
        node: NodeId,
    },
    /// The user kills this job now (from the trace's cancellation field).
    Cancel { job: JobId },
    /// A gang time-slice quantum expired; consider rotating.
    RotateCheck,
    /// A dataset staging finished; release its shared-store readers.
    StagingDone { staging: Staging },
}

/// Per-run state of a currently executing job.
#[derive(Debug, Clone)]
struct ActiveRun {
    start_secs: f64,
    /// Wall-time stretch over service time: slowdown × checkpoint overhead
    /// × elastic shrink factor (requested/granted workers).
    stretch: f64,
    /// GPUs actually held (granted gang), for utilization accounting.
    gpus: f64,
    /// Wall-clock restore penalty paid at the start of this run.
    resume_penalty: f64,
    worker_nodes: Vec<NodeId>,
    runtime: RuntimePreference,
}

/// A snapshot of one job's lifecycle, as reported to clients.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The job id.
    pub id: JobId,
    /// Lifecycle state.
    pub state: JobState,
    /// Task name from the schema.
    pub name: String,
    /// Nodes the job currently runs on (empty unless running).
    pub nodes: Vec<NodeId>,
    /// Submission time, seconds.
    pub submit_secs: f64,
    /// Remaining service time, seconds.
    pub remaining_secs: f64,
    /// Times preempted so far.
    pub preemptions: u32,
}

/// One job's bounded platform-side log: rendered event lines plus a
/// count of lines evicted once the ring filled.
#[derive(Debug, Default)]
struct JobLog {
    lines: Vec<(f64, String)>,
    dropped: u64,
}

/// Handles for the `tacc_core_*` and `tacc_cluster_*` metric series the
/// platform maintains itself (the other layers register their own).
#[derive(Debug)]
struct CoreMetrics {
    jobs_submitted: Counter,
    jobs_completed: Counter,
    jobs_failed: Counter,
    jobs_rejected: Counter,
    jobs_cancelled: Counter,
    queue_delay: Histogram,
    free_gpus: Gauge,
    largest_free_block: Gauge,
    fragmentation: Gauge,
    alloc_failures: Counter,
}

impl CoreMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        CoreMetrics {
            jobs_submitted: registry.counter("tacc_core_jobs_submitted_total", &[]),
            jobs_completed: registry.counter("tacc_core_jobs_completed_total", &[]),
            jobs_failed: registry.counter("tacc_core_jobs_failed_total", &[]),
            jobs_rejected: registry.counter("tacc_core_jobs_rejected_total", &[]),
            jobs_cancelled: registry.counter("tacc_core_jobs_cancelled_total", &[]),
            queue_delay: registry.histogram("tacc_core_queue_delay_seconds", &[]),
            free_gpus: registry.gauge("tacc_cluster_free_gpus", &[]),
            largest_free_block: registry.gauge("tacc_cluster_largest_free_block", &[]),
            fragmentation: registry.gauge("tacc_cluster_fragmentation", &[]),
            alloc_failures: registry.counter("tacc_cluster_alloc_failures_total", &[]),
        }
    }
}

/// The full-stack platform.
///
/// See the crate docs for the layer map. All methods are deterministic for
/// a given configuration, trace and seed.
#[derive(Debug)]
pub struct Platform {
    config: PlatformConfig,
    clock: Clock,
    events: EventQueue<Event>,
    cluster: Cluster,
    compiler: Compiler,
    scheduler: Scheduler,
    exec: ExecModel,
    checkpoint: CheckpointPolicy,
    failover: FailoverPolicy,
    injector: Option<FailureInjector>,
    store: Option<SharedStore>,

    pending_records: Vec<TraceRecord>,
    jobs: BTreeMap<JobId, Job>,
    runtimes: BTreeMap<JobId, RuntimePreference>,
    active: BTreeMap<JobId, ActiveRun>,
    /// Last nodes each job ran on (survives completion, for `tcloud get`).
    last_nodes: BTreeMap<JobId, Vec<NodeId>>,
    tokens: BTreeMap<JobId, u64>,
    logs: BTreeMap<JobId, JobLog>,
    next_job: u64,

    bus: EventBus,
    registry: MetricsRegistry,
    exec_telemetry: ExecTelemetry,
    metrics: CoreMetrics,
    last_alloc_failures: u64,

    util: UtilizationTracker,
    group_busy: Vec<f64>,
    group_gpu_secs: Vec<f64>,
    group_last_update: f64,
    completed: Vec<CompletedJob>,
    failed: u64,
    failed_waste_gpu_secs: f64,
    rejected: u64,
    cancelled: u64,
    staging_secs_total: f64,
    stagings: u64,
    faults: u64,
    failovers: u64,
    provisioning_latency_total: f64,
    events_processed: u64,
}

impl Platform {
    /// Builds a platform from configuration.
    pub fn new(config: PlatformConfig) -> Self {
        let cluster = Cluster::new(config.cluster.clone());
        let total_gpus = f64::from(cluster.total_gpus());
        let registry = MetricsRegistry::new();
        let mut scheduler = Scheduler::new(config.resolved_scheduler());
        scheduler.attach_registry(&registry);
        let mut compiler = Compiler::new(config.compiler);
        compiler.attach_registry(&registry);
        let exec_telemetry = ExecTelemetry::new(&registry);
        let metrics = CoreMetrics::new(&registry);
        let bus = EventBus::new(config.event_buffer_capacity);
        let injector = config
            .node_mtbf_secs
            .map(|mtbf| FailureInjector::new(mtbf, config.seed ^ 0xFA17));
        let store = config
            .storage
            .map(|cfg| SharedStore::new(cfg, cluster.node_count()));
        let groups = config.roster.len();
        Platform {
            compiler,
            exec: ExecModel::new(config.exec),
            checkpoint: config.checkpoint,
            failover: config.failover,
            injector,
            store,
            scheduler,
            cluster,
            clock: Clock::new(),
            events: EventQueue::new(),
            pending_records: Vec::new(),
            jobs: BTreeMap::new(),
            runtimes: BTreeMap::new(),
            active: BTreeMap::new(),
            last_nodes: BTreeMap::new(),
            tokens: BTreeMap::new(),
            logs: BTreeMap::new(),
            next_job: 0,
            bus,
            registry,
            exec_telemetry,
            metrics,
            last_alloc_failures: 0,
            util: UtilizationTracker::new(total_gpus),
            group_busy: vec![0.0; groups],
            group_gpu_secs: vec![0.0; groups],
            group_last_update: 0.0,
            completed: Vec::new(),
            failed: 0,
            failed_waste_gpu_secs: 0.0,
            rejected: 0,
            cancelled: 0,
            staging_secs_total: 0.0,
            stagings: 0,
            faults: 0,
            failovers: 0,
            provisioning_latency_total: 0.0,
            config,
            events_processed: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The cluster under management (read-only).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The scheduling layer (read-only).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The compiler layer (read-only; exposes cache stats).
    pub fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    /// Drains a node for maintenance: running leases finish normally but
    /// nothing new is placed there. Returns `false` for unknown nodes.
    pub fn drain_node(&mut self, node: NodeId) -> bool {
        self.cluster.drain(node)
    }

    /// Returns a drained node to service and immediately reschedules.
    pub fn undrain_node(&mut self, node: NodeId) -> bool {
        let ok = self.cluster.undrain(node);
        if ok {
            self.run_round();
        }
        ok
    }

    /// The output artifacts a job left on its nodes — what `tcloud get`
    /// retrieves. One entry per `(node, file, size-MiB)`; empty until the
    /// job has run at least once. Sizes are deterministic per job so
    /// retrieval output is reproducible.
    pub fn job_artifacts(&self, id: JobId) -> Vec<(NodeId, String, u32)> {
        let Some(nodes) = self.last_nodes.get(&id) else {
            return Vec::new();
        };
        let Some(job) = self.jobs.get(&id) else {
            return Vec::new();
        };
        let checkpoint_mb = job.schema().model.map(|m| m.param_mb as u32).unwrap_or(50);
        let mut out = Vec::new();
        for (rank, &node) in nodes.iter().enumerate() {
            out.push((
                node,
                format!("worker-{rank}.log"),
                1 + (id.value() % 7) as u32,
            ));
            if rank == 0 {
                out.push((node, "checkpoint.pt".to_owned(), checkpoint_mb));
                out.push((node, "metrics.jsonl".to_owned(), 2));
            }
        }
        out
    }

    /// Shared-store totals: `(MiB staged from the backend, node-cache
    /// hits)`. `None` when the storage model is disabled.
    pub fn storage_stats(&self) -> Option<(u64, u64)> {
        self.store
            .as_ref()
            .map(|s| (s.total_staged_mb(), s.cache_hits()))
    }

    /// Looks up a job.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// All job ids ever submitted, in submission order.
    pub fn job_ids(&self) -> Vec<JobId> {
        self.jobs.keys().copied().collect()
    }

    /// Client-facing status snapshot of a job.
    pub fn job_status(&self, id: JobId) -> Option<JobStatus> {
        let job = self.jobs.get(&id)?;
        let nodes = self
            .active
            .get(&id)
            .map(|r| {
                let mut n = r.worker_nodes.clone();
                n.sort_unstable();
                n.dedup();
                n
            })
            .unwrap_or_default();
        Some(JobStatus {
            id,
            state: job.state(),
            name: job.schema().name.clone(),
            nodes,
            submit_secs: job.submit_secs(),
            remaining_secs: job.remaining_secs(),
            preemptions: job.preemptions(),
        })
    }

    /// The platform-side log of a job (what `tcloud logs` aggregates).
    /// Bounded: once a job accumulates more than
    /// [`PlatformConfig::log_lines_per_job`] lines, the oldest are
    /// evicted ([`Self::job_log_dropped`] counts them).
    pub fn job_log(&self, id: JobId) -> &[(f64, String)] {
        self.logs
            .get(&id)
            .map(|l| l.lines.as_slice())
            .unwrap_or(&[])
    }

    /// Lines evicted from the job's bounded log ring.
    pub fn job_log_dropped(&self, id: JobId) -> u64 {
        self.logs.get(&id).map(|l| l.dropped).unwrap_or(0)
    }

    /// The platform event bus: every job state transition so far, stamped
    /// with simulated time and a monotone sequence number.
    pub fn events(&self) -> &EventBus {
        &self.bus
    }

    /// All buffered events for one job, oldest first.
    pub fn job_events(&self, id: JobId) -> Vec<EventRecord> {
        self.bus.for_job(id)
    }

    /// Snapshot of every operational metric registered by the four layers
    /// (`tacc_core_*`, `tacc_sched_*`, `tacc_compiler_*`, `tacc_exec_*`,
    /// `tacc_cluster_*`).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Prometheus text exposition of every operational metric.
    pub fn metrics_text(&self) -> String {
        self.registry.expose()
    }

    /// Explains a job's current situation — the answer `tcloud why`
    /// prints. For a waiting job this is the scheduler's most recent skip
    /// reason (quota exhausted, no feasible placement, blocked backfill
    /// window, head-of-line blocking); otherwise the last recorded event.
    pub fn why(&self, id: JobId) -> Option<String> {
        let job = self.jobs.get(&id)?;
        match job.state() {
            JobState::Submitted => {
                Some("provisioning: the compiler layer is preparing the task".to_owned())
            }
            JobState::Queued | JobState::Preempted => {
                match self.scheduler.decision_trace().latest_skip(id) {
                    Some((at, reason)) => Some(format!("waiting since t={at:.0}s: {reason}")),
                    None => Some("queued: no scheduling round has evaluated it yet".to_owned()),
                }
            }
            _ => match self.bus.for_job(id).last() {
                Some(rec) => Some(format!("t={:.0}s: {}", rec.at_secs, rec.event)),
                None => Some(format!("{:?}", job.state())),
            },
        }
    }

    /// Cancels a job (user kill). Queued jobs are dequeued; running jobs
    /// are stopped and their resources freed. Returns `false` if the job
    /// does not exist or is already terminal.
    pub fn cancel_job(&mut self, id: JobId) -> bool {
        let now = self.clock.now().as_secs();
        let Some(job) = self.jobs.get_mut(&id) else {
            return false;
        };
        if job.state().is_terminal() {
            return false;
        }
        if self.active.contains_key(&id) {
            self.release_run(id, now);
            self.scheduler.task_finished(id, &mut self.cluster);
        } else {
            self.scheduler.cancel(id);
        }
        let job = self.job_mut(id);
        job.cancel(now);
        self.cancelled += 1;
        self.metrics.jobs_cancelled.inc();
        self.emit(now, PlatformEvent::Cancelled { job: id });
        self.run_round();
        true
    }

    /// Schedules every record of `trace` for submission.
    pub fn load_trace(&mut self, trace: &Trace) {
        for record in trace.records() {
            let idx = self.pending_records.len();
            self.pending_records.push(record.clone());
            self.events.schedule(
                SimTime::from_secs(record.submit_secs),
                Event::Submit { record: idx },
            );
        }
    }

    /// Submits a task interactively at the current simulation time.
    ///
    /// `service_secs` is the oracle service requirement (what the task
    /// would need under ideal execution).
    pub fn submit_schema(&mut self, schema: TaskSchema, service_secs: f64) -> JobId {
        let record = TraceRecord {
            submit_secs: self.clock.now().as_secs(),
            schema,
            service_secs,
            cancel_after_secs: None,
        };
        let idx = self.pending_records.len();
        self.pending_records.push(record);
        let id = self.do_submit(idx);
        self.run_round();
        id
    }

    /// Schedules the user-cancellation event for a submitted record.
    fn schedule_cancel(&mut self, id: JobId, now: f64, after_secs: f64) {
        self.events.schedule(
            SimTime::from_secs(now) + SimDuration::from_secs(after_secs),
            Event::Cancel { job: id },
        );
    }

    /// Processes a single event; returns its timestamp, or `None` when the
    /// event queue is empty.
    pub fn step(&mut self) -> Option<SimTime> {
        let (at, event) = self.events.pop()?;
        self.clock.advance_to(at);
        self.events_processed += 1;
        assert!(
            self.events_processed <= self.config.max_events,
            "event budget exhausted ({}); runaway simulation?",
            self.config.max_events
        );
        self.handle(event);
        Some(at)
    }

    /// Runs until no events remain.
    pub fn run_until_idle(&mut self) {
        while self.step().is_some() {}
    }

    /// Runs events up to and including time `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(at) = self.events.peek_time() {
            if at > until {
                break;
            }
            self.step();
        }
        if self.clock.now() < until {
            self.clock.advance_to(until);
        }
    }

    /// Convenience: loads a trace, runs to completion, and reports.
    pub fn run_trace(&mut self, trace: &Trace) -> SimulationReport {
        self.load_trace(trace);
        self.run_until_idle();
        self.report()
    }

    /// Builds the simulation report for everything processed so far.
    pub fn report(&self) -> SimulationReport {
        let horizon = self.clock.now().as_secs().max(1e-9);
        let snapshot = self.registry.snapshot();
        let round_latency = snapshot
            .histogram("tacc_sched_round_latency_seconds")
            .cloned()
            .unwrap_or_default();
        SimulationReport::build(ReportInputs {
            completed: &self.completed,
            submitted: self.jobs.len(),
            failed: self.failed,
            failed_waste_gpu_hours: self.failed_waste_gpu_secs / 3600.0,
            rejected: self.rejected,
            cancelled: self.cancelled,
            staging_secs_total: self.staging_secs_total,
            stagings: self.stagings,
            faults: self.faults,
            failovers: self.failovers,
            preemptions: self.scheduler.preemption_count(),
            backfill_starts: self.scheduler.backfill_starts(),
            util: &self.util,
            horizon_secs: horizon,
            group_gpu_secs: &self.group_gpu_secs,
            group_count: self.config.roster.len(),
            cache: self.compiler.cache().stats(),
            provisioning_latency_total: self.provisioning_latency_total,
            compilations: self.compiler.compilations(),
            rounds: self.scheduler.rounds(),
            round_latency,
            events_recorded: self.bus.recorded(),
            events_dropped: self.bus.dropped(),
        })
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, event: Event) {
        match event {
            Event::Submit { record } => {
                self.do_submit(record);
            }
            Event::CompileDone { job } => self.on_compile_done(job),
            Event::Finish { job, token } => self.on_finish(job, token),
            Event::Fault { job, token, node } => self.on_fault(job, token, node),
            Event::Cancel { job } => {
                // The user may already have seen the job finish; cancelling
                // a terminal job is a no-op.
                let _ = self.cancel_job(job);
            }
            Event::StagingDone { staging } => {
                if let Some(store) = &mut self.store {
                    store.end_staging(&staging);
                }
            }
            Event::RotateCheck => {
                let now = self.clock.now().as_secs();
                let outcome = self.scheduler.rotate(now, &mut self.cluster);
                if !outcome.is_empty() {
                    self.apply_decisions(&outcome, now);
                    // Freed + re-filled capacity may unblock more work.
                    self.run_round();
                }
            }
        }
    }

    /// The tracked job behind an id the platform produced itself (active
    /// runs, scheduler decisions, event payloads). Absence is a platform
    /// bug, so this is the single place that invariant may panic.
    fn job_ref(&self, id: JobId) -> &Job {
        self.jobs
            .get(&id)
            .expect("platform invariant: live job ids stay in the job table")
    }

    /// Mutable sibling of [`Platform::job_ref`].
    fn job_mut(&mut self, id: JobId) -> &mut Job {
        self.jobs
            .get_mut(&id)
            .expect("platform invariant: live job ids stay in the job table")
    }

    fn do_submit(&mut self, record_idx: usize) -> JobId {
        let now = self.clock.now().as_secs();
        let record = self.pending_records[record_idx].clone();
        let id = JobId::from_value(self.next_job);
        self.next_job += 1;
        let job = Job::new(id, record.schema.clone(), now, record.service_secs);
        self.jobs.insert(id, job);
        self.metrics.jobs_submitted.inc();
        self.emit(
            now,
            PlatformEvent::Submitted {
                job: id,
                group: record.schema.group,
                name: record.schema.name.clone(),
            },
        );

        // Layer 2: compile. Provisioning latency delays queue entry.
        let compiled = self
            .compiler
            .compile(&record.schema)
            .expect("trace schemas are pre-validated");
        self.runtimes.insert(id, compiled.instruction.runtime);
        self.provisioning_latency_total += compiled.provisioning.latency_secs;
        self.emit(
            now,
            PlatformEvent::Compiled {
                job: id,
                instruction: compiled.instruction.kind.to_string(),
                payload_mb: compiled.provisioning.total_mb,
                transferred_mb: compiled.provisioning.transferred_mb,
                chunk_hits: u64::from(compiled.provisioning.chunk_hits),
                chunk_misses: u64::from(compiled.provisioning.chunk_misses),
                provisioning_secs: compiled.provisioning.latency_secs,
            },
        );
        self.events.schedule(
            SimTime::from_secs(now) + SimDuration::from_secs(compiled.provisioning.latency_secs),
            Event::CompileDone { job: id },
        );
        if let Some(after) = record.cancel_after_secs {
            self.schedule_cancel(id, now, after);
        }
        id
    }

    fn on_compile_done(&mut self, id: JobId) {
        let now = self.clock.now().as_secs();
        let job = self.job_ref(id);
        if job.state().is_terminal() {
            return; // cancelled during provisioning
        }
        let schema = job.schema();
        let request = TaskRequest {
            id,
            group: schema.group,
            qos: schema.qos,
            workers: schema.workers,
            per_worker: schema.resources,
            est_secs: schema.est_duration_secs,
            submit_secs: job.submit_secs(),
            elastic: schema.elastic,
        };
        // Admission control: reject outright anything that could never run
        // here — a gang the hardware cannot hold, or a guaranteed request
        // larger than its group's entire quota — instead of queueing it
        // forever.
        if !self.gang_feasible(schema) {
            self.rejected += 1;
            self.metrics.jobs_rejected.inc();
            self.emit(
                now,
                PlatformEvent::Rejected {
                    job: id,
                    reason: RejectReason::GangNeverFits,
                },
            );
            let job = self.job_mut(id);
            job.reject(now);
            return;
        }
        if !self.scheduler.admissible_ever(&request) {
            self.rejected += 1;
            self.metrics.jobs_rejected.inc();
            self.emit(
                now,
                PlatformEvent::Rejected {
                    job: id,
                    reason: RejectReason::ExceedsGroupQuota,
                },
            );
            let job = self.job_mut(id);
            job.reject(now);
            return;
        }
        let job = self.job_mut(id);
        job.enqueue();
        self.scheduler.submit(request);
        self.emit(now, PlatformEvent::Queued { job: id });
        self.run_round();
    }

    /// One scheduling round plus processing of its decisions — in the
    /// order the scheduler took them, because a reclaim may preempt a task
    /// started earlier in the same round.
    fn run_round(&mut self) {
        let now = self.clock.now().as_secs();
        // Iterate to a fixpoint: a round's preemptions re-queue victims
        // that can only restart in a subsequent round (each round works on
        // a queue snapshot). Guaranteed to terminate: every non-empty
        // round starts at least one job.
        loop {
            let outcome = self.scheduler.schedule(now, &mut self.cluster);
            if outcome.is_empty() {
                break;
            }
            self.apply_decisions(&outcome, now);
        }
        self.refresh_cluster_gauges();
    }

    fn apply_decisions(&mut self, outcome: &tacc_sched::SchedOutcome, now: f64) {
        for decision in &outcome.decisions {
            match decision {
                tacc_sched::Decision::Preempt { id, reclaimed_for } => {
                    self.on_preempted(*id, now);
                    self.emit(
                        now,
                        PlatformEvent::Preempted {
                            job: *id,
                            reclaimed_for: *reclaimed_for,
                        },
                    );
                }
                tacc_sched::Decision::Start(started) => {
                    self.on_started(
                        started.request.id,
                        &started.worker_nodes,
                        started.backfilled,
                        now,
                    );
                }
                _ => {}
            }
        }
    }

    fn on_started(&mut self, id: JobId, worker_nodes: &[NodeId], backfilled: bool, now: f64) {
        let job = self.job_mut(id);
        job.start(now);
        // Copy out only the schema fields this path needs; cloning the whole
        // schema would heap-allocate the name/image/dependency strings on
        // every start.
        let schema = job.schema();
        let per_worker_gpus = schema.resources.gpus;
        let requested_workers = schema.workers;
        let model = schema.model;
        let kind = schema.kind;
        let qos = schema.qos;
        let group = schema.group;
        let dataset = schema.env.dataset.clone();
        let remaining = job.remaining_secs();
        let resumed = job.preemptions() + job.restarts() > 0;

        // Elastic tasks may have been granted fewer workers than requested
        // (one entry in `worker_nodes` per granted worker); a shrunken
        // data-parallel gang runs proportionally longer.
        let granted_workers = u32::try_from(worker_nodes.len())
            .expect("worker count fits u32")
            .max(1);
        let granted_gpus = per_worker_gpus * granted_workers; // 0 for CPU tasks
        let shrink = f64::from(requested_workers) / f64::from(granted_workers);

        let gpu_model = self
            .cluster
            .node(worker_nodes[0])
            .map(|n| n.gpu_model())
            .unwrap_or(GpuModel::A100);
        let runtime = self
            .runtimes
            .get(&id)
            .copied()
            .unwrap_or(RuntimePreference::Auto);
        let plan = match (&model, kind) {
            (Some(profile), TaskKind::Training | TaskKind::Inference) => self.exec.plan_training(
                &self.cluster,
                runtime,
                worker_nodes,
                granted_gpus.max(1),
                gpu_model,
                profile,
            ),
            _ if kind.is_cpu_only() => self.exec.plan_simple(None),
            _ => self.exec.plan_simple(Some(gpu_model)),
        };

        // Co-location interference from neighbours present at start time.
        let interference = self.exec.interference_factor(&self.cluster, worker_nodes);
        let stretch =
            plan.slowdown * interference * self.checkpoint.runtime_overhead_factor() * shrink;
        let resume_penalty = if resumed {
            self.checkpoint.restore_cost_secs()
        } else {
            0.0
        };
        // Dataset staging from the shared filesystem happens before any
        // useful work; nodes that still cache the dataset skip it.
        let staging_secs = match (&mut self.store, &dataset) {
            (Some(store), Some((dataset, size_mb))) => {
                let staging = store.begin_staging(worker_nodes, dataset, *size_mb);
                if staging.readers > 0 {
                    self.staging_secs_total += staging.secs;
                    self.stagings += 1;
                    self.events.schedule(
                        SimTime::from_secs(now) + SimDuration::from_secs(staging.secs),
                        Event::StagingDone { staging },
                    );
                }
                staging.secs
            }
            _ => 0.0,
        };
        let wall = remaining * stretch + resume_penalty + staging_secs;
        let token = self.bump_token(id);
        {
            let mut distinct = worker_nodes.to_vec();
            distinct.sort_unstable();
            distinct.dedup();
            self.last_nodes.insert(id, distinct);
        }
        self.active.insert(
            id,
            ActiveRun {
                start_secs: now,
                stretch,
                gpus: f64::from(granted_gpus),
                // Both restore and staging are dead wall time before useful
                // progress; interruption accounting subtracts them.
                resume_penalty: resume_penalty + staging_secs,
                worker_nodes: worker_nodes.to_vec(),
                runtime: plan.runtime,
            },
        );
        self.events.schedule(
            SimTime::from_secs(now) + SimDuration::from_secs(wall),
            Event::Finish { job: id, token },
        );
        if let Some(quantum) = self.config.scheduler.time_slice_secs {
            if qos == tacc_workload::QosClass::BestEffort {
                self.events.schedule(
                    SimTime::from_secs(now) + SimDuration::from_secs(quantum),
                    Event::RotateCheck,
                );
            }
        }
        if let Some(injector) = &self.injector {
            if let Some(fault) = injector.first_fault(worker_nodes, now, wall) {
                self.events.schedule(
                    SimTime::from_secs(now) + SimDuration::from_secs(fault.at_secs),
                    Event::Fault {
                        job: id,
                        token,
                        node: fault.node,
                    },
                );
            }
        }

        let gpus = f64::from(granted_gpus);
        self.accrue_group_time(now);
        self.util.acquire(now, gpus);
        self.group_busy[group.index()] += gpus;
        let distinct_nodes = {
            let mut n = worker_nodes.to_vec();
            n.sort_unstable();
            n.dedup();
            n.len()
        };
        self.exec_telemetry.note_plan(&plan);
        self.emit(
            now,
            PlatformEvent::Placed {
                job: id,
                nodes: distinct_nodes as u64,
                runtime: format!("{:?}", plan.runtime),
                slowdown: plan.slowdown,
                granted_workers: u64::from(granted_workers),
                requested_workers: u64::from(requested_workers),
                backfilled,
            },
        );
    }

    /// Accounts an interruption of a running job; returns `(progress,
    /// lost)` in service seconds.
    fn interruption_amounts(&self, run: &ActiveRun, now: f64) -> (f64, f64) {
        let elapsed = (now - run.start_secs).max(0.0);
        let effective = (elapsed - run.resume_penalty).max(0.0);
        let lost_wall = self.checkpoint.lost_on_interrupt(effective);
        (effective / run.stretch, lost_wall / run.stretch)
    }

    /// Releases metrics/active-run state for a job leaving execution.
    /// Returns the run record.
    fn release_run(&mut self, id: JobId, now: f64) -> ActiveRun {
        let run = self.active.remove(&id).expect("job was running");
        self.bump_token(id);
        let group = self.job_ref(id).schema().group.index();
        self.accrue_group_time(now);
        self.util.release(now, run.gpus);
        self.group_busy[group] -= run.gpus;
        run
    }

    fn on_preempted(&mut self, id: JobId, now: f64) {
        let run = self.release_run(id, now);
        let (progress, lost) = self.interruption_amounts(&run, now);
        let job = self.job_mut(id);
        job.preempt(now, progress, lost);
        job.enqueue(); // scheduler already holds the re-queued request
    }

    fn on_finish(&mut self, id: JobId, token: u64) {
        if self.tokens.get(&id) != Some(&token) {
            return; // stale completion from a run that was interrupted
        }
        let now = self.clock.now().as_secs();
        let run = self.release_run(id, now);
        self.scheduler.task_finished(id, &mut self.cluster);
        // Field access (not `job_mut`) so `self.completed` stays borrowable.
        let job = self
            .jobs
            .get_mut(&id)
            .expect("platform invariant: live job ids stay in the job table");
        job.complete(now);
        let schema = job.schema();
        let jct_secs = job.jct_secs().expect("completed job has JCT");
        let queue_delay_secs = job.queueing_delay_secs().unwrap_or(0.0);
        self.completed.push(CompletedJob {
            id,
            group: schema.group,
            gpus: schema.total_gpus(),
            kind: schema.kind,
            submit_secs: job.submit_secs(),
            queue_delay_secs,
            jct_secs,
            service_secs: job.service_secs(),
            preemptions: job.preemptions(),
            restarts: job.restarts(),
            wasted_secs: job.wasted_secs(),
        });
        self.metrics.jobs_completed.inc();
        self.metrics.queue_delay.observe(queue_delay_secs);
        self.emit(now, PlatformEvent::Completed { job: id, jct_secs });
        let _ = run;
        self.run_round();
    }

    fn on_fault(&mut self, id: JobId, token: u64, node: NodeId) {
        if self.tokens.get(&id) != Some(&token) {
            return; // the run this fault targeted is already over
        }
        let now = self.clock.now().as_secs();
        self.faults += 1;
        self.exec_telemetry.note_fault();
        let run = self.release_run(id, now);
        self.scheduler.task_finished(id, &mut self.cluster);
        let (progress, lost) = self.interruption_amounts(&run, now);
        match self.failover.fallback_for(run.runtime) {
            Some(fallback) => {
                self.failovers += 1;
                self.exec_telemetry.note_failover();
                self.runtimes.insert(id, fallback);
                // Field access (not `job_mut`) so `self.scheduler` stays
                // borrowable for the resubmission below.
                let job = self
                    .jobs
                    .get_mut(&id)
                    .expect("platform invariant: live job ids stay in the job table");
                job.interrupt_for_restart(now, progress, lost);
                job.enqueue();
                let schema = job.schema();
                self.scheduler.submit(TaskRequest {
                    id,
                    group: schema.group,
                    qos: schema.qos,
                    workers: schema.workers,
                    per_worker: schema.resources,
                    est_secs: schema.est_duration_secs,
                    submit_secs: job.submit_secs(),
                    elastic: schema.elastic,
                });
                self.emit(
                    now,
                    PlatformEvent::FailedOver {
                        job: id,
                        node: node.to_string(),
                        fallback: format!("{fallback:?}"),
                    },
                );
            }
            None => {
                self.failed += 1;
                self.metrics.jobs_failed.inc();
                let job = self.job_mut(id);
                job.fail(now, progress);
                // Everything a failed job ever consumed is waste: service
                // it completed (now useless) plus all interruption losses.
                let consumed = (job.service_secs() - job.remaining_secs()) + job.wasted_secs();
                self.failed_waste_gpu_secs += f64::from(job.schema().total_gpus()) * consumed;
                self.emit(
                    now,
                    PlatformEvent::Failed {
                        job: id,
                        node: node.to_string(),
                    },
                );
            }
        }
        self.run_round();
    }

    // ------------------------------------------------------------------
    // Small helpers
    // ------------------------------------------------------------------

    /// Whether `schema`'s gang could ever be placed on an empty cluster.
    fn gang_feasible(&self, schema: &TaskSchema) -> bool {
        let per = schema.resources;
        let mut capacity_workers: u32 = 0;
        for node in self.cluster.nodes() {
            let cap = node.capacity();
            let mut k = u32::MAX;
            if let Some(q) = cap.gpus.checked_div(per.gpus) {
                k = k.min(q);
            }
            if let Some(q) = cap.cpu_cores.checked_div(per.cpu_cores) {
                k = k.min(q);
            }
            if let Some(q) = cap.mem_gb.checked_div(per.mem_gb) {
                k = k.min(q);
            }
            if k == u32::MAX {
                k = 0; // zero-resource schemas are rejected by validation
            }
            capacity_workers = capacity_workers.saturating_add(k);
            if capacity_workers >= schema.workers {
                return true;
            }
        }
        false
    }

    fn bump_token(&mut self, id: JobId) -> u64 {
        let t = self.tokens.entry(id).or_insert(0);
        *t += 1;
        *t
    }

    fn accrue_group_time(&mut self, now: f64) {
        let dt = (now - self.group_last_update).max(0.0);
        if dt > 0.0 {
            for (acc, &busy) in self.group_gpu_secs.iter_mut().zip(&self.group_busy) {
                *acc += busy * dt;
            }
        }
        self.group_last_update = now;
    }

    /// Records `event` on the bus and renders it into the job's bounded
    /// log ring — the single source of truth for `tcloud logs` lines.
    fn emit(&mut self, at: f64, event: PlatformEvent) {
        let job = event.job();
        let line = event.to_string();
        self.bus.record(at, event);
        let log = self.logs.entry(job).or_default();
        if self.config.log_lines_per_job == 0 {
            log.dropped += 1;
            return;
        }
        if log.lines.len() >= self.config.log_lines_per_job {
            log.lines.remove(0);
            log.dropped += 1;
        }
        log.lines.push((at, line));
    }

    /// Refreshes the `tacc_cluster_*` gauges from current cluster state.
    /// Fragmentation is the fraction of free GPUs outside the largest
    /// single free block — 0 when all free capacity is contiguous.
    fn refresh_cluster_gauges(&mut self) {
        let free = f64::from(self.cluster.free_gpus());
        let largest = f64::from(self.cluster.largest_free_block());
        self.metrics.free_gpus.set(free);
        self.metrics.largest_free_block.set(largest);
        let fragmentation = if free > 0.0 {
            1.0 - largest / free
        } else {
            0.0
        };
        self.metrics.fragmentation.set(fragmentation);
        let failures = self.cluster.alloc_failures();
        self.metrics
            .alloc_failures
            .inc_by(failures.saturating_sub(self.last_alloc_failures));
        self.last_alloc_failures = failures;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacc_cluster::{ClusterSpec, ResourceVec};
    use tacc_sched::QuotaMode;
    use tacc_workload::{GenParams, GroupId, QosClass, TraceGenerator};

    fn tiny_config() -> PlatformConfig {
        PlatformConfig {
            cluster: ClusterSpec::uniform(1, 2, GpuModel::A100, 8),
            roster: tacc_workload::GroupRoster::campus_default(16),
            ..PlatformConfig::default()
        }
    }

    fn one_gpu_schema(group: usize) -> TaskSchema {
        TaskSchema::builder("unit", GroupId::from_index(group))
            .resources(ResourceVec::gpus_only(1))
            .est_duration_secs(600.0)
            .build()
            .expect("valid")
    }

    #[test]
    fn single_job_full_lifecycle() {
        let mut p = Platform::new(tiny_config());
        let id = p.submit_schema(one_gpu_schema(0), 600.0);
        p.run_until_idle();
        let job = p.job(id).expect("exists");
        assert_eq!(job.state(), JobState::Completed);
        // JCT = provisioning + service (no queueing, no contention, small
        // overheads); sanity: between service and service + 10 minutes.
        let jct = job.jct_secs().expect("completed");
        assert!(jct >= 600.0, "jct {jct}");
        assert!(jct < 1200.0, "jct {jct}");
        let log = p.job_log(id);
        assert!(log.iter().any(|(_, m)| m == "completed"));
        assert!(p.cluster().check_invariants());
        assert_eq!(p.cluster().free_gpus(), 16);
    }

    #[test]
    fn report_accounts_all_jobs() {
        let mut p = Platform::new(tiny_config());
        let trace = TraceGenerator::new(
            GenParams {
                roster: tacc_workload::GroupRoster::campus_default(16),
                peak_jobs_per_hour: 6.0,
                ..GenParams::default()
            },
            3,
        )
        .generate_days(0.5);
        let report = p.run_trace(&trace);
        assert_eq!(report.submitted, trace.len());
        assert_eq!(
            report.completed + (report.failed + report.rejected + report.cancelled) as usize,
            trace.len()
        );
        assert!(report.mean_utilization > 0.0);
        assert!(report.jct.count() == report.completed);
    }

    #[test]
    fn determinism_across_runs() {
        let trace = TraceGenerator::new(GenParams::default(), 9).generate_days(0.2);
        let r1 = Platform::new(PlatformConfig::default()).run_trace(&trace);
        let r2 = Platform::new(PlatformConfig::default()).run_trace(&trace);
        assert_eq!(r1.jct.mean(), r2.jct.mean());
        assert_eq!(r1.mean_utilization, r2.mean_utilization);
    }

    #[test]
    fn infeasible_gang_rejected_at_admission() {
        let mut p = Platform::new(tiny_config()); // 2 nodes x 8 GPUs
        let id = p.submit_schema(
            TaskSchema::builder("too-big", GroupId::from_index(0))
                .workers(4)
                .resources(ResourceVec::gpus_only(8))
                .est_duration_secs(600.0)
                .build()
                .expect("valid"),
            600.0,
        );
        p.run_until_idle();
        assert_eq!(p.job(id).expect("exists").state(), JobState::Failed);
        let report = p.report();
        assert_eq!(report.rejected, 1);
        assert!(p.job_log(id).iter().any(|(_, m)| m.contains("rejected")));
    }

    #[test]
    fn cancel_queued_job() {
        let mut p = Platform::new(tiny_config());
        // Saturate the 16-GPU cluster with one long gang, then queue a job
        // behind it.
        let filler = TaskSchema::builder("filler", GroupId::from_index(0))
            .workers(2)
            .resources(ResourceVec::gpus_only(8))
            .est_duration_secs(1e6)
            .build()
            .expect("valid");
        p.submit_schema(filler, 1e6);
        p.run_until(SimTime::from_secs(1000.0)); // filler is now running
        let id = p.submit_schema(one_gpu_schema(0), 600.0);
        p.run_until(SimTime::from_secs(3600.0));
        assert_eq!(p.job(id).expect("exists").state(), JobState::Queued);
        assert!(p.cancel_job(id));
        assert_eq!(p.job(id).expect("exists").state(), JobState::Cancelled);
        assert!(!p.cancel_job(id));
    }

    #[test]
    fn over_quota_request_rejected_at_admission() {
        let mut cfg = tiny_config();
        cfg.scheduler.quota = QuotaMode::Static;
        cfg.scheduler.quotas = vec![0; 8]; // no group may run anything
        let mut p = Platform::new(cfg);
        let id = p.submit_schema(one_gpu_schema(0), 600.0);
        p.run_until_idle();
        assert_eq!(p.job(id).expect("exists").state(), JobState::Failed);
        assert_eq!(p.report().rejected, 1);
    }

    #[test]
    fn cancel_running_job_frees_gpus() {
        let mut p = Platform::new(tiny_config());
        let id = p.submit_schema(one_gpu_schema(0), 1e6);
        p.run_until(SimTime::from_secs(7200.0));
        assert_eq!(p.job(id).expect("exists").state(), JobState::Running);
        assert_eq!(p.cluster().free_gpus(), 15);
        assert!(p.cancel_job(id));
        assert_eq!(p.cluster().free_gpus(), 16);
        assert!(p.cluster().check_invariants());
    }

    #[test]
    fn preemption_round_trips_through_requeue() {
        let mut cfg = tiny_config();
        cfg.scheduler.quota = QuotaMode::Borrowing;
        cfg.scheduler.quotas = vec![8, 8];
        cfg.scheduler.group_count = 8;
        let mut p = Platform::new(cfg);
        // Borrower occupies everything.
        let borrower = p.submit_schema(
            TaskSchema::builder("borrower", GroupId::from_index(0))
                .workers(2)
                .resources(ResourceVec::gpus_only(8))
                .qos(QosClass::BestEffort)
                .est_duration_secs(50_000.0)
                .build()
                .expect("valid"),
            50_000.0,
        );
        p.run_until(SimTime::from_secs(3600.0));
        assert_eq!(p.job(borrower).expect("exists").state(), JobState::Running);
        // Owner reclaims.
        let owner = p.submit_schema(
            TaskSchema::builder("owner", GroupId::from_index(1))
                .resources(ResourceVec::gpus_only(8))
                .est_duration_secs(600.0)
                .build()
                .expect("valid"),
            600.0,
        );
        p.run_until_idle();
        let owner_job = p.job(owner).expect("exists");
        assert_eq!(owner_job.state(), JobState::Completed);
        let borrower_job = p.job(borrower).expect("exists");
        assert!(borrower_job.preemptions() >= 1);
        assert_eq!(borrower_job.state(), JobState::Completed);
        assert!(p.cluster().check_invariants());
        assert_eq!(p.cluster().free_gpus(), 16);
    }

    #[test]
    fn drained_node_empties_then_rejoins() {
        let mut p = Platform::new(tiny_config()); // 2 nodes x 8
        let drained = tacc_cluster::NodeId::from_index(0);
        assert!(p.drain_node(drained));
        // A full-cluster-sized stream of 1-GPU jobs lands only on node 1.
        for i in 0..8 {
            p.submit_schema(one_gpu_schema(i % 8), 600.0);
        }
        p.run_until(SimTime::from_secs(300.0));
        let n0 = p.cluster().node(drained).expect("exists");
        assert_eq!(n0.used().gpus, 0, "drained node must stay empty");
        assert!(!n0.is_schedulable());
        // Undraining lets queued/new work use it again.
        assert!(p.undrain_node(drained));
        let id = p.submit_schema(one_gpu_schema(0), 600.0);
        p.run_until_idle();
        assert_eq!(p.job(id).expect("exists").state(), JobState::Completed);
        assert!(p.cluster().check_invariants());
    }

    #[test]
    fn time_slicing_rotates_best_effort_monopolist() {
        let mut cfg = tiny_config();
        cfg.scheduler.time_slice_secs = Some(1800.0);
        let mut p = Platform::new(cfg);
        // A best-effort gang takes the whole 16-GPU cluster for a long run.
        let hog = p.submit_schema(
            TaskSchema::builder("hog", GroupId::from_index(0))
                .workers(2)
                .resources(ResourceVec::gpus_only(8))
                .qos(QosClass::BestEffort)
                .est_duration_secs(40_000.0)
                .build()
                .expect("valid"),
            40_000.0,
        );
        p.run_until(SimTime::from_secs(600.0));
        // A short guaranteed job arrives and must not wait 11 hours.
        let quick = p.submit_schema(
            TaskSchema::builder("quick", GroupId::from_index(1))
                .resources(ResourceVec::gpus_only(8))
                .est_duration_secs(900.0)
                .build()
                .expect("valid"),
            900.0,
        );
        p.run_until_idle();
        let quick_job = p.job(quick).expect("exists");
        assert_eq!(quick_job.state(), JobState::Completed);
        // It started within ~one quantum of the hog's start, not after it.
        assert!(
            quick_job.queueing_delay_secs().expect("ran") < 3600.0,
            "waited {:?}s",
            quick_job.queueing_delay_secs()
        );
        let hog_job = p.job(hog).expect("exists");
        assert_eq!(hog_job.state(), JobState::Completed);
        assert!(hog_job.preemptions() >= 1, "hog must have been rotated");
    }

    #[test]
    fn elastic_job_starts_shrunk_and_runs_longer() {
        let mut p = Platform::new(tiny_config()); // 2 nodes x 8
                                                  // Occupy one node for a long time.
        p.submit_schema(
            TaskSchema::builder("filler", GroupId::from_index(0))
                .resources(ResourceVec::gpus_only(8))
                .est_duration_secs(1e6)
                .build()
                .expect("valid"),
            1e6,
        );
        p.run_until(SimTime::from_secs(500.0));
        // An elastic 2x8 gang only finds one node: granted 1 worker and
        // stretched ~2x.
        let id = p.submit_schema(
            TaskSchema::builder("elastic", GroupId::from_index(1))
                .workers(2)
                .resources(ResourceVec::gpus_only(8))
                .qos(QosClass::BestEffort)
                .elastic(true)
                .est_duration_secs(3600.0)
                .build()
                .expect("valid"),
            3600.0,
        );
        p.run_until(SimTime::from_secs(600.0));
        let status = p.job_status(id).expect("exists");
        assert_eq!(status.state, JobState::Running);
        assert_eq!(status.nodes.len(), 1, "granted a single node");
        assert!(p
            .job_log(id)
            .iter()
            .any(|(_, m)| m.contains("elastic: 1/2")));
        // Runtime is ~2x the 3600 s service (plus small overheads).
        p.run_until_idle();
        let job = p.job(id).expect("exists");
        let run_time =
            job.jct_secs().expect("completed") - job.queueing_delay_secs().expect("started");
        assert!(run_time > 7000.0, "shrunk gang must run ~2x: {run_time}");
        assert!(run_time < 9000.0, "but not much more: {run_time}");
    }

    #[test]
    fn failure_injection_with_failover_still_completes() {
        let mut cfg = tiny_config();
        cfg.node_mtbf_secs = Some(4000.0); // aggressive faults
        cfg.failover = FailoverPolicy::SwitchRuntime;
        let mut p = Platform::new(cfg);
        let id = p.submit_schema(
            TaskSchema::builder("long", GroupId::from_index(0))
                .workers(2)
                .resources(ResourceVec::gpus_only(8))
                .est_duration_secs(20_000.0)
                .build()
                .expect("valid"),
            20_000.0,
        );
        p.run_until_idle();
        let job = p.job(id).expect("exists");
        assert_eq!(job.state(), JobState::Completed);
        let report = p.report();
        assert!(report.faults >= 1, "expected at least one injected fault");
        assert_eq!(report.failovers, report.faults);
        assert!(job.restarts() >= 1);
    }

    #[test]
    fn event_bus_satisfies_conservation() {
        let mut p = Platform::new(tiny_config());
        let trace = TraceGenerator::new(
            GenParams {
                roster: tacc_workload::GroupRoster::campus_default(16),
                peak_jobs_per_hour: 6.0,
                ..GenParams::default()
            },
            7,
        )
        .generate_days(0.5);
        let report = p.run_trace(&trace);
        let records: Vec<_> = p.events().records().cloned().collect();
        let check = tacc_obs::conservation(&records);
        assert!(check.balanced(), "unbalanced: {check:?}");
        assert_eq!(check.submitted, trace.len() as u64);
        assert_eq!(check.completed as usize, report.completed);
        assert_eq!(report.events_recorded as usize, records.len());
        assert_eq!(report.events_dropped, 0);
        // The JSONL export round-trips losslessly.
        let parsed = tacc_obs::EventBus::parse_jsonl(&p.events().to_jsonl()).expect("valid JSONL");
        assert_eq!(parsed, records);
    }

    #[test]
    fn job_log_is_bounded_and_counts_drops() {
        let mut cfg = tiny_config();
        cfg.log_lines_per_job = 2;
        let mut p = Platform::new(cfg);
        let id = p.submit_schema(one_gpu_schema(0), 600.0);
        p.run_until_idle();
        // The lifecycle emits at least submitted/compiled/queued/started/
        // completed; only the newest two lines survive.
        assert_eq!(p.job_log(id).len(), 2);
        assert!(p.job_log_dropped(id) >= 3);
        assert!(p.job_log(id).iter().any(|(_, m)| m == "completed"));
        // The event bus is bounded separately: full history remains here.
        assert!(p.job_events(id).len() >= 5);
    }

    #[test]
    fn why_explains_a_stuck_job() {
        let mut p = Platform::new(tiny_config());
        let filler = TaskSchema::builder("filler", GroupId::from_index(0))
            .workers(2)
            .resources(ResourceVec::gpus_only(8))
            .est_duration_secs(1e6)
            .build()
            .expect("valid");
        p.submit_schema(filler, 1e6);
        p.run_until(SimTime::from_secs(1000.0));
        let id = p.submit_schema(one_gpu_schema(1), 600.0);
        p.run_until(SimTime::from_secs(2000.0));
        assert_eq!(p.job(id).expect("exists").state(), JobState::Queued);
        let why = p.why(id).expect("known job");
        assert!(why.contains("no feasible placement"), "why: {why}");
        p.run_until_idle();
        let why = p.why(id).expect("known job");
        assert!(why.contains("completed"), "why: {why}");
        assert_eq!(p.why(JobId::from_value(999)), None);
    }

    #[test]
    fn metrics_span_all_layers() {
        let mut p = Platform::new(tiny_config());
        p.submit_schema(one_gpu_schema(0), 600.0);
        p.run_until_idle();
        let snap = p.metrics();
        assert_eq!(snap.counter("tacc_core_jobs_submitted_total"), Some(1));
        assert_eq!(snap.counter("tacc_core_jobs_completed_total"), Some(1));
        assert!(snap.counter("tacc_sched_rounds_total").unwrap_or(0) > 0);
        assert_eq!(snap.counter("tacc_compiler_compilations_total"), Some(1));
        assert_eq!(snap.counter("tacc_exec_plans_total"), Some(1));
        assert_eq!(snap.gauge("tacc_cluster_free_gpus"), Some(16.0));
        let hist = snap
            .histogram("tacc_sched_round_latency_seconds")
            .expect("round latency histogram");
        assert!(hist.count > 0);
        let text = p.metrics_text();
        assert!(text.contains("# TYPE"));
        assert!(text.contains("tacc_core_jobs_submitted_total"));
        assert!(text.contains("tacc_cluster_free_gpus"));
        let report = p.report();
        assert_eq!(Some(report.rounds), snap.counter("tacc_sched_rounds_total"));
        assert!(report.round_latency.count > 0);
        assert!(report.events_recorded >= 5);
    }

    #[test]
    fn failure_injection_without_failover_fails_jobs() {
        let mut cfg = tiny_config();
        cfg.node_mtbf_secs = Some(2000.0);
        cfg.failover = FailoverPolicy::FailJob;
        let mut p = Platform::new(cfg);
        let id = p.submit_schema(
            TaskSchema::builder("doomed", GroupId::from_index(0))
                .workers(2)
                .resources(ResourceVec::gpus_only(8))
                .est_duration_secs(50_000.0)
                .build()
                .expect("valid"),
            50_000.0,
        );
        p.run_until_idle();
        assert_eq!(p.job(id).expect("exists").state(), JobState::Failed);
        assert!(p.report().failed >= 1);
        assert_eq!(p.cluster().free_gpus(), 16);
    }
}
