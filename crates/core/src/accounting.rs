//! Accounting: group GPU-time accrual, utilization, interruption
//! amounts, core metric handles, bounded job logs, and cluster gauges.
//!
//! Everything here is arithmetic over state the lifecycle engine
//! ([`crate::lifecycle`]) already validated — no `Job` state is written
//! in this module.

use tacc_obs::{Counter, Gauge, Histogram, MetricsRegistry, PlatformEvent};

use crate::platform::{ActiveRun, Platform};

/// One job's bounded platform-side log: rendered event lines plus a
/// count of lines evicted once the ring filled.
#[derive(Debug, Default)]
pub(crate) struct JobLog {
    pub(crate) lines: Vec<(f64, String)>,
    pub(crate) dropped: u64,
}

/// Handles for the `tacc_core_*` and `tacc_cluster_*` metric series the
/// platform maintains itself (the other layers register their own).
#[derive(Debug)]
pub(crate) struct CoreMetrics {
    pub(crate) jobs_submitted: Counter,
    pub(crate) jobs_completed: Counter,
    pub(crate) jobs_failed: Counter,
    pub(crate) jobs_rejected: Counter,
    pub(crate) jobs_cancelled: Counter,
    pub(crate) illegal_transitions: Counter,
    pub(crate) queue_delay: Histogram,
    pub(crate) free_gpus: Gauge,
    pub(crate) largest_free_block: Gauge,
    pub(crate) fragmentation: Gauge,
    pub(crate) alloc_failures: Counter,
    pub(crate) dropped_events: Counter,
    pub(crate) dropped_transitions: Counter,
    pub(crate) goodput_ratio: Gauge,
    pub(crate) goodput_availability: Gauge,
    pub(crate) goodput_efficiency: Gauge,
    pub(crate) goodput_badput: Gauge,
}

impl CoreMetrics {
    pub(crate) fn new(registry: &MetricsRegistry) -> Self {
        CoreMetrics {
            jobs_submitted: registry.counter("tacc_core_jobs_submitted_total", &[]),
            jobs_completed: registry.counter("tacc_core_jobs_completed_total", &[]),
            jobs_failed: registry.counter("tacc_core_jobs_failed_total", &[]),
            jobs_rejected: registry.counter("tacc_core_jobs_rejected_total", &[]),
            jobs_cancelled: registry.counter("tacc_core_jobs_cancelled_total", &[]),
            illegal_transitions: registry.counter("tacc_core_illegal_transitions_total", &[]),
            queue_delay: registry.histogram("tacc_core_queue_delay_seconds", &[]),
            free_gpus: registry.gauge("tacc_cluster_free_gpus", &[]),
            largest_free_block: registry.gauge("tacc_cluster_largest_free_block", &[]),
            fragmentation: registry.gauge("tacc_cluster_fragmentation", &[]),
            alloc_failures: registry.counter("tacc_cluster_alloc_failures_total", &[]),
            // Observability-layer series: names are declared next to the
            // obs code that owns their semantics (and linted there).
            dropped_events: registry.counter(tacc_obs::DROPPED_EVENTS_METRIC, &[]),
            dropped_transitions: registry.counter(tacc_obs::DROPPED_TRANSITIONS_METRIC, &[]),
            goodput_ratio: registry.gauge(tacc_obs::GOODPUT_RATIO_METRIC, &[]),
            goodput_availability: registry.gauge(tacc_obs::GOODPUT_AVAILABILITY_METRIC, &[]),
            goodput_efficiency: registry.gauge(tacc_obs::GOODPUT_EFFICIENCY_METRIC, &[]),
            goodput_badput: registry.gauge(tacc_obs::GOODPUT_BADPUT_METRIC, &[]),
        }
    }
}

impl Platform {
    /// Accounts an interruption of a running job; returns `(progress,
    /// lost)` in service seconds. The arithmetic itself lives with the
    /// checkpoint policy in the execution layer
    /// (`CheckpointPolicy::interruption_amounts`).
    pub(crate) fn interruption_amounts(&self, run: &ActiveRun, now: f64) -> (f64, f64) {
        let elapsed = (now - run.start_secs).max(0.0);
        self.checkpoint
            .interruption_amounts(elapsed, run.resume_penalty, run.stretch)
    }

    /// Releases metrics/active-run state for a job leaving execution.
    /// Returns the run record. The run token is *not* invalidated here —
    /// that happens at the lifecycle transition site when the
    /// leaving-`Running` event is applied.
    pub(crate) fn release_run(&mut self, id: tacc_workload::JobId, now: f64) -> ActiveRun {
        let run = self
            .jobs
            .get_mut(id)
            .and_then(|slot| slot.active.take())
            .expect("job was running");
        let Some(group) = self.job_ref(id).map(|job| job.schema().group.index()) else {
            return run;
        };
        self.accrue_group_time(now);
        self.util.release(now, run.gpus);
        self.group_busy[group] -= run.gpus;
        run
    }

    pub(crate) fn accrue_group_time(&mut self, now: f64) {
        let dt = (now - self.group_last_update).max(0.0);
        if dt > 0.0 {
            for (acc, &busy) in self.group_gpu_secs.iter_mut().zip(&self.group_busy) {
                *acc += busy * dt;
            }
        }
        self.group_last_update = now;
    }

    /// Records `event` on the bus and renders it into the job's bounded
    /// log ring — the single source of truth for `tcloud logs` lines.
    pub(crate) fn emit(&mut self, at: f64, event: PlatformEvent) {
        let job = event.job();
        let line = event.to_string();
        self.bus.record(at, event);
        let Some(slot) = self.jobs.get_mut(job) else {
            return; // events always name a tracked job; tolerate anyway
        };
        let log = &mut slot.log;
        if self.config.log_lines_per_job == 0 {
            log.dropped += 1;
            return;
        }
        if log.lines.len() >= self.config.log_lines_per_job {
            log.lines.remove(0);
            log.dropped += 1;
        }
        log.lines.push((at, line));
    }

    /// Refreshes the `tacc_cluster_*` gauges from current cluster state.
    /// Fragmentation is the fraction of free GPUs outside the largest
    /// single free block — 0 when all free capacity is contiguous.
    pub(crate) fn refresh_cluster_gauges(&mut self) {
        let free = f64::from(self.cluster.free_gpus());
        let largest = f64::from(self.cluster.largest_free_block());
        self.metrics.free_gpus.set(free);
        self.metrics.largest_free_block.set(largest);
        let fragmentation = if free > 0.0 {
            1.0 - largest / free
        } else {
            0.0
        };
        self.metrics.fragmentation.set(fragmentation);
        let failures = self.cluster.alloc_failures();
        self.metrics
            .alloc_failures
            .inc_by(failures.saturating_sub(self.last_alloc_failures));
        self.last_alloc_failures = failures;
    }
}
