//! Fault handling: node failures hitting running jobs, runtime
//! failover, and checkpoint-restart accounting.
//!
//! A fault aimed at a run that already ended carries a stale token and
//! is dropped at the door; anything that slips past the guard and still
//! targets a non-`Running` job is rejected by the lifecycle engine as a
//! typed `IllegalTransition` rather than corrupting state.

use tacc_cluster::NodeId;
use tacc_obs::PlatformEvent;
use tacc_sched::TaskRequest;
use tacc_workload::{JobEvent, JobId};

use crate::platform::Platform;

impl Platform {
    /// Delivers a node fault to every job whose active run is placed on
    /// `node`, in job-id order (deterministic), as if each had received
    /// a DES `Fault` event now. Returns the jobs that were hit. This is
    /// the `Command::FaultNode` entry point — operator-injected faults
    /// and the failure injector share the same per-run handler below.
    pub(crate) fn fault_node(&mut self, node: NodeId) -> Vec<JobId> {
        let targets: Vec<(JobId, u64)> = self
            .jobs
            .iter()
            .filter_map(|(id, slot)| {
                let run = slot.active.as_ref()?;
                run.worker_nodes.contains(&node).then_some((id, slot.token))
            })
            .collect();
        for &(id, token) in &targets {
            self.on_fault(id, token, node);
        }
        targets.into_iter().map(|(id, _)| id).collect()
    }

    pub(crate) fn on_fault(&mut self, id: JobId, token: u64, node: NodeId) {
        if self.jobs.get(id).map(|slot| slot.token) != Some(token) {
            return; // the run this fault targeted is already over
        }
        let now = self.clock.now().as_secs();
        self.faults += 1;
        self.exec_telemetry.note_fault();
        let run = self.release_run(id, now);
        self.scheduler.task_finished(id, &mut self.cluster);
        let (progress, lost) = self.interruption_amounts(&run, now);
        match self.failover.fallback_for(run.runtime) {
            Some(fallback) => {
                self.failovers += 1;
                self.exec_telemetry.note_failover();
                if let Some(slot) = self.jobs.get_mut(id) {
                    slot.runtime = fallback;
                }
                let _ = self.apply_lifecycle_event(
                    id,
                    JobEvent::Interrupt {
                        at_secs: now,
                        progress_secs: progress,
                        lost_secs: lost,
                    },
                );
                let _ = self.apply_lifecycle_event(id, JobEvent::Enqueue);
                let Some(request) = self.job_ref(id).map(|job| {
                    let schema = job.schema();
                    TaskRequest {
                        id,
                        group: schema.group,
                        qos: schema.qos,
                        workers: schema.workers,
                        per_worker: schema.resources,
                        est_secs: schema.est_duration_secs,
                        submit_secs: job.submit_secs(),
                        elastic: schema.elastic,
                    }
                }) else {
                    return;
                };
                self.scheduler.submit(request);
                self.emit(
                    now,
                    PlatformEvent::FailedOver {
                        job: id,
                        node: node.to_string(),
                        fallback: format!("{fallback:?}"),
                    },
                );
            }
            None => {
                self.failed += 1;
                self.metrics.jobs_failed.inc();
                let _ = self.apply_lifecycle_event(
                    id,
                    JobEvent::Fail {
                        at_secs: now,
                        progress_secs: progress,
                    },
                );
                // Everything a failed job ever consumed is waste: service
                // it completed (now useless) plus all interruption losses.
                let waste = match self.job_ref(id) {
                    Some(job) => {
                        let consumed =
                            (job.service_secs() - job.remaining_secs()) + job.wasted_secs();
                        f64::from(job.schema().total_gpus()) * consumed
                    }
                    None => 0.0,
                };
                self.failed_waste_gpu_secs += waste;
                self.emit(
                    now,
                    PlatformEvent::Failed {
                        job: id,
                        node: node.to_string(),
                    },
                );
            }
        }
        self.run_round();
    }
}
