//! The service-mode wire layer: a dependency-free JSON value model, a
//! CRC-32 checksum, and the length-prefixed checksummed frame format
//! shared by the `taccd` write-ahead journal, the daemon's socket
//! protocol, and the `tcloud` client transport.
//!
//! Everything here is hand-rolled on purpose. The container's
//! `serde_json` may be a typecheck-only stub (see
//! `tacc_workload::serde_json_functional`), and the journal is a
//! durability surface: its bytes must be producible and re-parsable with
//! zero optional dependencies, byte-identically, forever.
//!
//! ## Frame format
//!
//! ```text
//! +------------+------------+-------------------+
//! | len: u32le | crc: u32le | payload (len bytes)|
//! +------------+------------+-------------------+
//! ```
//!
//! `crc` is the IEEE CRC-32 of the payload. A frame whose header or
//! payload is cut short, whose length exceeds [`MAX_FRAME_LEN`], or whose
//! checksum does not match is *torn*: decoding stops there and reports
//! the byte offset, so journal recovery can keep the longest valid prefix
//! and truncate the rest — loudly.

use std::fmt;

/// Hard ceiling on one frame's payload, applied on both encode and
/// decode. Large enough for any task schema, small enough that a
/// corrupted length field cannot make a reader allocate gigabytes.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Version of the client–daemon protocol and the journal frame payloads.
/// Bumped on any incompatible change; the daemon rejects mismatched
/// clients and journals with a typed error instead of misparsing them.
pub const PROTOCOL_VERSION: u64 = 1;

// --------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, table built in const context.
// --------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 of `bytes` (the Ethernet/zip polynomial).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// --------------------------------------------------------------------
// Framing
// --------------------------------------------------------------------

/// Why a byte range does not decode as a complete, intact frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than a complete header + payload; `needed` is the
    /// total frame size implied so far (8 while the header itself is
    /// short).
    Incomplete {
        /// Total bytes the frame needs to decode.
        needed: usize,
    },
    /// The length field exceeds [`MAX_FRAME_LEN`] — a torn or corrupt
    /// header, never a legal frame.
    TooLarge {
        /// The decoded (bogus) payload length.
        len: usize,
    },
    /// The payload checksum does not match the header.
    Checksum {
        /// CRC recorded in the header.
        expected: u32,
        /// CRC of the payload actually present.
        actual: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Incomplete { needed } => {
                write!(f, "incomplete frame: {needed} bytes needed")
            }
            FrameError::TooLarge { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            FrameError::Checksum { expected, actual } => write!(
                f,
                "frame checksum mismatch: header says {expected:#010x}, payload is {actual:#010x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one frame: `[len u32le][crc u32le][payload]`.
///
/// # Panics
///
/// Never: payloads over [`MAX_FRAME_LEN`] are truncated by the caller's
/// contract — all in-tree payloads are single JSON lines far below the
/// cap; oversized input is debug-asserted.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN, "payload exceeds frame cap");
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Attempts to decode the frame at the start of `buf`.
///
/// Returns the payload slice and the total bytes consumed.
///
/// # Errors
///
/// [`FrameError`] when the bytes at the head of `buf` are not one intact
/// frame; `Incomplete` distinguishes "wait for more bytes" (sockets) or
/// "torn tail" (journals) from the always-fatal `TooLarge`/`Checksum`.
pub fn decode_frame(buf: &[u8]) -> Result<(&[u8], usize), FrameError> {
    if buf.len() < 8 {
        return Err(FrameError::Incomplete { needed: 8 });
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge { len });
    }
    let expected = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if buf.len() < 8 + len {
        return Err(FrameError::Incomplete { needed: 8 + len });
    }
    let payload = &buf[8..8 + len];
    let actual = crc32(payload);
    if actual != expected {
        return Err(FrameError::Checksum { expected, actual });
    }
    Ok((payload, 8 + len))
}

// --------------------------------------------------------------------
// JSON value model
// --------------------------------------------------------------------

/// A parsed JSON value. Objects keep their key order, so a value built
/// and re-serialized in tree order is byte-stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; integers up to 2^53 survive).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite-or-not number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer (rejects fractions and negatives).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_f64(*n, out),
            Json::Str(s) => write_json_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// `Display` (and thus `.to_string()`) is the byte-stable journal/wire
/// encoding: compact (no whitespace), object keys in insertion order.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Shortest-round-trip float syntax: Rust's `Display` for `f64` prints
/// the shortest decimal string that parses back to the same bits, so the
/// journal round-trips timestamps exactly. Non-finite values use the
/// JSON-compatible string spellings `"inf"`/`"-inf"`/`"nan"` — they only
/// appear in open-ended reservation windows.
fn write_f64(n: f64, out: &mut String) {
    use fmt::Write as _;
    if n.is_nan() {
        out.push_str("\"nan\"");
    } else if n.is_infinite() {
        out.push_str(if n > 0.0 { "\"inf\"" } else { "\"-inf\"" });
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_json_string(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Where and why parsing a JSON text failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What the parser expected.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value from `text` (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError {
            at: pos,
            message: "trailing characters after the value",
        });
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(JsonError {
            at: *pos,
            message: "unexpected end of input",
        });
    };
    match b {
        b'n' => parse_lit(bytes, pos, "null", Json::Null),
        b't' => parse_lit(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(bytes, pos, "false", Json::Bool(false)),
        b'"' => parse_string(bytes, pos).map(|s| match s.as_str() {
            // The three non-finite spellings `write_f64` emits.
            "inf" => Json::Num(f64::INFINITY),
            "-inf" => Json::Num(f64::NEG_INFINITY),
            "nan" => Json::Num(f64::NAN),
            _ => Json::Str(s),
        }),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            message: "expected ',' or ']' in array",
                        })
                    }
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b'"') {
                    return Err(JsonError {
                        at: *pos,
                        message: "expected a string key",
                    });
                }
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError {
                        at: *pos,
                        message: "expected ':' after object key",
                    });
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            message: "expected ',' or '}' in object",
                        })
                    }
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        _ => Err(JsonError {
            at: *pos,
            message: "unexpected character",
        }),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &'static str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError {
            at: *pos,
            message: "invalid literal",
        })
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| JsonError {
        at: start,
        message: "invalid number bytes",
    })?;
    text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
        at: start,
        message: "invalid number",
    })
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    // Caller checked the opening quote.
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(JsonError {
                at: *pos,
                message: "unterminated string",
            });
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(JsonError {
                        at: *pos,
                        message: "unterminated escape",
                    });
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4).ok_or(JsonError {
                            at: *pos,
                            message: "short \\u escape",
                        })?;
                        let hex = std::str::from_utf8(hex).map_err(|_| JsonError {
                            at: *pos,
                            message: "invalid \\u escape",
                        })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                            at: *pos,
                            message: "invalid \\u escape",
                        })?;
                        *pos += 4;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            message: "unknown escape",
                        })
                    }
                }
            }
            _ => {
                // Multi-byte UTF-8 sequences pass through verbatim.
                let s = &bytes[*pos..];
                let ch_len = utf8_len(s[0]);
                let chunk = s.get(..ch_len).ok_or(JsonError {
                    at: *pos,
                    message: "invalid UTF-8",
                })?;
                let text = std::str::from_utf8(chunk).map_err(|_| JsonError {
                    at: *pos,
                    message: "invalid UTF-8",
                })?;
                out.push_str(text);
                *pos += ch_len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Convenience: builds an object from key/value pairs in order.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trip() {
        let frame = encode_frame(b"hello world");
        let (payload, used) = decode_frame(&frame).expect("intact");
        assert_eq!(payload, b"hello world");
        assert_eq!(used, frame.len());
    }

    #[test]
    fn torn_frames_are_detected() {
        let frame = encode_frame(b"payload bytes");
        // Short header.
        assert!(matches!(
            decode_frame(&frame[..5]),
            Err(FrameError::Incomplete { needed: 8 })
        ));
        // Short payload.
        assert!(matches!(
            decode_frame(&frame[..frame.len() - 1]),
            Err(FrameError::Incomplete { .. })
        ));
        // Flipped payload byte.
        let mut corrupt = frame.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        assert!(matches!(
            decode_frame(&corrupt),
            Err(FrameError::Checksum { .. })
        ));
        // Bogus length field.
        let mut huge = frame;
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&huge),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn json_round_trips_structures() {
        let v = obj(vec![
            ("name", Json::Str("job \"zero\"\n".to_owned())),
            ("n", Json::Num(42.0)),
            ("pi", Json::Num(3.5)),
            ("neg", Json::Num(-0.125)),
            ("big", Json::Num(1e6)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "list",
                Json::Arr(vec![Json::Num(1.0), Json::Str("two".to_owned())]),
            ),
        ]);
        let text = v.to_string();
        let back = parse(&text).expect("parses");
        assert_eq!(v, back);
        // Byte-stable: serialize → parse → serialize is the identity.
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn json_nonfinite_floats_round_trip() {
        for n in [f64::INFINITY, f64::NEG_INFINITY] {
            let text = Json::Num(n).to_string();
            let back = parse(&text).expect("parses");
            assert_eq!(back.as_f64(), Some(n));
        }
        let nan = parse(&Json::Num(f64::NAN).to_string()).expect("parses");
        assert!(nan.as_f64().expect("num").is_nan());
    }

    #[test]
    fn json_float_precision_is_exact() {
        for n in [0.1, 1.0 / 3.0, 123456789.123456, 5e-324, f64::MAX] {
            let text = Json::Num(n).to_string();
            let back = parse(&text).expect("parses").as_f64().expect("num");
            assert_eq!(back.to_bits(), n.to_bits(), "{n} mangled via {text}");
        }
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(parse("{bad").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn json_accessors() {
        let v = parse("{\"a\":3,\"b\":\"x\",\"c\":[true,null]}").expect("parses");
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        let arr = v.get("c").and_then(Json::as_arr).expect("arr");
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(v.get("missing"), None);
        // Fractions are not integers.
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-2.0).as_u64(), None);
    }
}
