//! Failure injection and fail-safe runtime switching (experiment F7).

use serde::{Deserialize, Serialize};

use tacc_cluster::NodeId;
use tacc_sim::dist;
use tacc_sim::SeedStream;
use tacc_workload::RuntimePreference;

/// A fault in the underlying runtime system during execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeFault {
    /// Seconds into the run at which the fault strikes.
    pub at_secs: f64,
    /// The node whose hardware/agent faulted.
    pub node: NodeId,
}

/// What the execution layer does when the runtime faults mid-run.
///
/// The paper's Table 1 lists "fail-safe switching" as the execution-layer
/// factor: with more than one runtime system live, a fault in one can be
/// absorbed by restarting the task on another instead of failing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum FailoverPolicy {
    /// The fault kills the job (no switching).
    FailJob,
    /// Switch to a fallback runtime and restart from checkpoint.
    #[default]
    SwitchRuntime,
}

impl FailoverPolicy {
    /// The runtime a faulted task switches to, if this policy switches.
    ///
    /// All-reduce tasks fall back to the parameter-server runtime (which
    /// tolerates worker loss); everything else restarts on itself.
    pub fn fallback_for(self, runtime: RuntimePreference) -> Option<RuntimePreference> {
        match self {
            FailoverPolicy::FailJob => None,
            FailoverPolicy::SwitchRuntime => Some(match runtime {
                RuntimePreference::AllReduce => RuntimePreference::ParameterServer,
                other => other,
            }),
        }
    }
}

/// Deterministic per-node failure sampler.
///
/// Node failures are modelled as independent Poisson processes with a
/// common MTBF; each node draws from its own seeded stream, so the failure
/// pattern is stable across runs and independent of everything else.
#[derive(Debug)]
pub struct FailureInjector {
    mtbf_secs: f64,
    seeds: SeedStream,
}

impl FailureInjector {
    /// Creates an injector with the given per-node mean time between
    /// failures.
    ///
    /// # Panics
    ///
    /// Panics if `mtbf_secs` is not positive.
    pub fn new(mtbf_secs: f64, seed: u64) -> Self {
        assert!(mtbf_secs > 0.0, "MTBF must be positive");
        FailureInjector {
            mtbf_secs,
            seeds: SeedStream::new(seed),
        }
    }

    /// The configured MTBF.
    pub fn mtbf_secs(&self) -> f64 {
        self.mtbf_secs
    }

    /// Samples the time (seconds from `epoch_secs`) until `node` next
    /// fails. The `epoch` parameter makes successive draws for the same
    /// node independent (pass the current simulation time).
    pub fn next_failure_after(&self, node: NodeId, epoch_secs: f64) -> f64 {
        let mut rng = self.node_rng(node, epoch_secs);
        dist::exponential(&mut rng, 1.0 / self.mtbf_secs)
    }

    /// Samples the first fault across a placement within `horizon_secs` of
    /// run time, or `None` if every node survives the window.
    pub fn first_fault(
        &self,
        nodes: &[NodeId],
        epoch_secs: f64,
        horizon_secs: f64,
    ) -> Option<RuntimeFault> {
        let mut deduped: Vec<NodeId> = nodes.to_vec();
        deduped.sort_unstable();
        deduped.dedup();
        deduped
            .into_iter()
            .map(|node| RuntimeFault {
                at_secs: self.next_failure_after(node, epoch_secs),
                node,
            })
            .filter(|f| f.at_secs <= horizon_secs)
            .min_by(|a, b| a.at_secs.total_cmp(&b.at_secs))
    }

    fn node_rng(&self, node: NodeId, epoch_secs: f64) -> tacc_sim::DetRng {
        // Quantize the epoch so the stream label is stable for a given call
        // site but distinct across resumption points.
        let epoch_ms = (epoch_secs * 1000.0).round() as u64;
        self.seeds.indexed_stream(
            "node-failure",
            (node.index() as u64) << 32 | (epoch_ms & 0xFFFF_FFFF),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_node_and_epoch() {
        let inj = FailureInjector::new(86_400.0, 5);
        let n = NodeId::from_index(3);
        assert_eq!(
            inj.next_failure_after(n, 100.0),
            inj.next_failure_after(n, 100.0)
        );
        assert_ne!(
            inj.next_failure_after(n, 100.0),
            inj.next_failure_after(n, 200.0)
        );
        assert_ne!(
            inj.next_failure_after(NodeId::from_index(4), 100.0),
            inj.next_failure_after(n, 100.0)
        );
    }

    #[test]
    fn mean_matches_mtbf() {
        let inj = FailureInjector::new(1000.0, 6);
        let n = 4000;
        let mean: f64 = (0..n)
            .map(|i| inj.next_failure_after(NodeId::from_index(i), 0.0))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1000.0).abs() < 60.0, "mean {mean}");
    }

    #[test]
    fn first_fault_within_horizon() {
        let inj = FailureInjector::new(1000.0, 7);
        let nodes: Vec<NodeId> = (0..16).map(NodeId::from_index).collect();
        // With 16 nodes and MTBF 1000 s, a fault within 10_000 s is near-certain.
        let fault = inj
            .first_fault(&nodes, 0.0, 10_000.0)
            .expect("fault expected");
        assert!(fault.at_secs <= 10_000.0);
        assert!(nodes.contains(&fault.node));
        // Tiny horizon: almost surely no fault.
        assert!(inj.first_fault(&nodes, 0.0, 1e-6).is_none());
    }

    #[test]
    fn more_nodes_fail_sooner_on_average() {
        let inj = FailureInjector::new(10_000.0, 8);
        let small: Vec<NodeId> = (0..2).map(NodeId::from_index).collect();
        let large: Vec<NodeId> = (0..32).map(NodeId::from_index).collect();
        let avg = |nodes: &[NodeId]| -> f64 {
            (0..200)
                .map(|i| {
                    inj.first_fault(nodes, i as f64 * 7.0, f64::MAX)
                        .expect("unbounded horizon")
                        .at_secs
                })
                .sum::<f64>()
                / 200.0
        };
        assert!(avg(&large) < avg(&small));
    }

    #[test]
    fn failover_fallbacks() {
        assert_eq!(
            FailoverPolicy::SwitchRuntime.fallback_for(RuntimePreference::AllReduce),
            Some(RuntimePreference::ParameterServer)
        );
        assert_eq!(
            FailoverPolicy::SwitchRuntime.fallback_for(RuntimePreference::SingleProcess),
            Some(RuntimePreference::SingleProcess)
        );
        assert_eq!(
            FailoverPolicy::FailJob.fallback_for(RuntimePreference::AllReduce),
            None
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mtbf_rejected() {
        let _ = FailureInjector::new(0.0, 1);
    }
}
