//! Periodic checkpointing: the price of preemptibility (experiment F5).

use serde::{Deserialize, Serialize};

/// A periodic checkpointing policy.
///
/// While a job runs, a checkpoint is written every `interval_secs`, costing
/// `write_secs` of stalled training each time (runtime overhead). When the
/// job is preempted or its node fails, all progress since the last
/// checkpoint is lost, plus `restore_secs` is paid on resume.
///
/// `CheckpointPolicy::disabled()` models jobs that never checkpoint: zero
/// overhead, but an interruption loses everything since the last start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    interval_secs: Option<f64>,
    write_secs: f64,
    restore_secs: f64,
}

impl CheckpointPolicy {
    /// Checkpoints every `interval_secs`, paying `write_secs` per write and
    /// `restore_secs` per resume.
    ///
    /// # Panics
    ///
    /// Panics if `interval_secs <= 0` or the costs are negative.
    pub fn every(interval_secs: f64, write_secs: f64, restore_secs: f64) -> Self {
        assert!(interval_secs > 0.0, "checkpoint interval must be positive");
        assert!(
            write_secs >= 0.0 && restore_secs >= 0.0,
            "checkpoint costs must be nonnegative"
        );
        CheckpointPolicy {
            interval_secs: Some(interval_secs),
            write_secs,
            restore_secs,
        }
    }

    /// The campus default: checkpoint every 10 minutes, 15 s writes, 60 s
    /// restores — typical for DNN training with model-sized state.
    pub fn campus_default() -> Self {
        CheckpointPolicy::every(600.0, 15.0, 60.0)
    }

    /// No checkpointing at all.
    pub fn disabled() -> Self {
        CheckpointPolicy {
            interval_secs: None,
            write_secs: 0.0,
            restore_secs: 0.0,
        }
    }

    /// Whether this policy ever checkpoints.
    pub fn is_enabled(&self) -> bool {
        self.interval_secs.is_some()
    }

    /// The checkpoint interval, if enabled.
    pub fn interval_secs(&self) -> Option<f64> {
        self.interval_secs
    }

    /// Multiplicative runtime overhead while running: writing checkpoints
    /// stretches wall time by `1 + write/interval`.
    pub fn runtime_overhead_factor(&self) -> f64 {
        match self.interval_secs {
            Some(interval) => 1.0 + self.write_secs / interval,
            None => 1.0,
        }
    }

    /// Progress lost if interrupted after `progress_secs` of useful work
    /// since the last (re)start: work since the last completed checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if `progress_secs` is negative.
    pub fn lost_on_interrupt(&self, progress_secs: f64) -> f64 {
        assert!(progress_secs >= 0.0, "negative progress");
        match self.interval_secs {
            Some(interval) => progress_secs % interval,
            None => progress_secs,
        }
    }

    /// Interruption accounting for the platform's lifecycle engine: the
    /// job ran `elapsed_secs` of wall time since its last (re)start, of
    /// which `resume_penalty_secs` went to restoring the previous
    /// checkpoint, and the executor stretches service time by `stretch`.
    /// Returns `(progress_secs, lost_secs)` in service-time units — the
    /// payload of a `Preempt`/`Interrupt` lifecycle event.
    ///
    /// # Panics
    ///
    /// Panics if the effective wall progress is negative (see
    /// [`lost_on_interrupt`](Self::lost_on_interrupt)).
    pub fn interruption_amounts(
        &self,
        elapsed_secs: f64,
        resume_penalty_secs: f64,
        stretch: f64,
    ) -> (f64, f64) {
        let effective = (elapsed_secs - resume_penalty_secs).max(0.0);
        let lost_wall = self.lost_on_interrupt(effective);
        (effective / stretch, lost_wall / stretch)
    }

    /// Fraction of running wall time spent writing checkpoints:
    /// `(factor − 1) / factor` where `factor` is
    /// [`runtime_overhead_factor`](Self::runtime_overhead_factor).
    ///
    /// The overhead is a multiplicative stretch, so of every stretched
    /// wall second, `1/factor` is forward progress and the rest is
    /// checkpoint writes. The observability layer uses this to carve the
    /// amortized `Checkpointing` span out of each `Running` interval.
    pub fn overhead_fraction(&self) -> f64 {
        let factor = self.runtime_overhead_factor();
        (factor - 1.0) / factor
    }

    /// One-time cost paid when a preempted/failed job resumes.
    pub fn restore_cost_secs(&self) -> f64 {
        if self.is_enabled() {
            self.restore_secs
        } else {
            0.0
        }
    }
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy::campus_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_factor() {
        let p = CheckpointPolicy::every(600.0, 15.0, 60.0);
        assert!((p.runtime_overhead_factor() - 1.025).abs() < 1e-12);
        assert_eq!(CheckpointPolicy::disabled().runtime_overhead_factor(), 1.0);
    }

    #[test]
    fn loss_is_bounded_by_interval() {
        let p = CheckpointPolicy::every(600.0, 15.0, 60.0);
        assert_eq!(p.lost_on_interrupt(0.0), 0.0);
        assert_eq!(p.lost_on_interrupt(599.0), 599.0);
        assert_eq!(p.lost_on_interrupt(600.0), 0.0);
        assert_eq!(p.lost_on_interrupt(1450.0), 250.0);
        // Disabled: everything is lost.
        assert_eq!(
            CheckpointPolicy::disabled().lost_on_interrupt(1450.0),
            1450.0
        );
    }

    #[test]
    fn overhead_fraction_complements_progress_share() {
        let p = CheckpointPolicy::every(600.0, 15.0, 60.0);
        // factor 1.025: of each stretched second, 1/1.025 is progress.
        let f = p.overhead_fraction();
        assert!((f - 0.025 / 1.025).abs() < 1e-15);
        assert!((f + 1.0 / p.runtime_overhead_factor() - 1.0).abs() < 1e-15);
        assert_eq!(CheckpointPolicy::disabled().overhead_fraction(), 0.0);
    }

    #[test]
    fn restore_cost_only_when_enabled() {
        assert_eq!(CheckpointPolicy::campus_default().restore_cost_secs(), 60.0);
        assert_eq!(CheckpointPolicy::disabled().restore_cost_secs(), 0.0);
    }

    #[test]
    fn tighter_interval_trades_overhead_for_loss() {
        let tight = CheckpointPolicy::every(60.0, 15.0, 60.0);
        let loose = CheckpointPolicy::every(3600.0, 15.0, 60.0);
        assert!(tight.runtime_overhead_factor() > loose.runtime_overhead_factor());
        assert!(tight.lost_on_interrupt(3599.0) < loose.lost_on_interrupt(3599.0));
    }

    #[test]
    fn interruption_amounts_discount_resume_penalty_and_stretch() {
        let p = CheckpointPolicy::every(600.0, 15.0, 60.0);
        // 1260s wall, 60s of it was checkpoint restore, stretch 2x:
        // effective wall progress 1200 = 2 intervals, nothing lost.
        let (progress, lost) = p.interruption_amounts(1260.0, 60.0, 2.0);
        assert_eq!(progress, 600.0);
        assert_eq!(lost, 0.0);
        // 250s past the last checkpoint is lost (in service time: /2).
        let (progress, lost) = p.interruption_amounts(1450.0, 0.0, 2.0);
        assert_eq!(progress, 725.0);
        assert_eq!(lost, 125.0);
        // Elapsed shorter than the restore penalty clamps to zero.
        let (progress, lost) = p.interruption_amounts(30.0, 60.0, 1.0);
        assert_eq!(progress, 0.0);
        assert_eq!(lost, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = CheckpointPolicy::every(0.0, 1.0, 1.0);
    }
}
