//! Operational telemetry for the execution layer.
//!
//! [`ExecModel`](crate::ExecModel) is a `Copy` value type, so metric
//! handles live in this separate observer: the platform holds one and
//! notifies it as plans are produced and faults arrive.

use tacc_obs::{Counter, Histogram, MetricsRegistry};

use crate::model::ExecutionPlan;

/// Handles into a [`MetricsRegistry`] for the `tacc_exec_*` series.
#[derive(Debug)]
pub struct ExecTelemetry {
    plans: Counter,
    faults: Counter,
    failovers: Counter,
    plan_slowdown: Histogram,
    comm_secs: Histogram,
}

impl ExecTelemetry {
    /// Registers the `tacc_exec_*` series in `registry` and returns the
    /// observer holding their handles.
    pub fn new(registry: &MetricsRegistry) -> Self {
        ExecTelemetry {
            plans: registry.counter("tacc_exec_plans_total", &[]),
            faults: registry.counter("tacc_exec_faults_total", &[]),
            failovers: registry.counter("tacc_exec_failovers_total", &[]),
            plan_slowdown: registry.histogram("tacc_exec_plan_slowdown", &[]),
            comm_secs: registry.histogram("tacc_exec_comm_seconds_per_iter", &[]),
        }
    }

    /// Records a produced execution plan (slowdown and per-iteration
    /// communication time distributions).
    pub fn note_plan(&self, plan: &ExecutionPlan) {
        self.plans.inc();
        self.plan_slowdown.observe(plan.slowdown);
        self.comm_secs.observe(plan.comm_secs);
    }

    /// Records a node fault that hit a running job.
    pub fn note_fault(&self) {
        self.faults.inc();
    }

    /// Records a successful fail-safe runtime switch (fault survived).
    pub fn note_failover(&self) {
        self.failovers.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacc_workload::RuntimePreference;

    #[test]
    fn telemetry_updates_registry() {
        let registry = MetricsRegistry::new();
        let t = ExecTelemetry::new(&registry);
        t.note_plan(&ExecutionPlan {
            runtime: RuntimePreference::AllReduce,
            compute_secs: 0.1,
            comm_secs: 0.02,
            slowdown: 1.3,
            efficiency: 0.8,
        });
        t.note_fault();
        t.note_fault();
        t.note_failover();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("tacc_exec_plans_total"), Some(1));
        assert_eq!(snap.counter("tacc_exec_faults_total"), Some(2));
        assert_eq!(snap.counter("tacc_exec_failovers_total"), Some(1));
        let slow = snap
            .histogram("tacc_exec_plan_slowdown")
            .expect("histogram");
        assert_eq!(slow.count, 1);
        assert!((slow.sum - 1.3).abs() < 1e-12);
    }
}
