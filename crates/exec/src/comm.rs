//! Analytic communication models for distributed training.
//!
//! All models compute the time to synchronize `volume_mb` of gradients
//! across `n` participants whose narrowest link runs at `bandwidth_gbps`.
//! They are the standard α–β style cost models (bandwidth term only; the
//! per-message latency term is folded into a fixed per-iteration overhead
//! in [`crate::ExecModel`], since at gradient sizes of 10⁸ bytes the
//! bandwidth term dominates).
//!
//! The shapes these models produce are what experiment F6 reproduces:
//! ring all-reduce is bandwidth-optimal and flat in `n`; tree pays a log
//! factor; the parameter server scales poorly past its shard count; and
//! hierarchical all-reduce recovers single-node NVLink performance for the
//! intra-node phase.

use tacc_cluster::{BandwidthTier, Cluster, GpuModel, NodeId};

/// Converts MiB to Gbit.
fn mb_to_gbit(mb: f64) -> f64 {
    mb * 8.0 / 1024.0
}

/// Time (seconds) for a ring all-reduce of `volume_mb` across `n` members
/// over a `bandwidth_gbps` bottleneck: `2(n-1)/n · V / B`.
///
/// # Panics
///
/// Panics if `n == 0` or `bandwidth_gbps <= 0`.
pub fn ring_allreduce_secs(volume_mb: f64, n: u32, bandwidth_gbps: f64) -> f64 {
    assert!(n > 0, "all-reduce needs at least one member");
    assert!(bandwidth_gbps > 0.0, "bandwidth must be positive");
    if n == 1 {
        return 0.0;
    }
    let nf = f64::from(n);
    2.0 * (nf - 1.0) / nf * mb_to_gbit(volume_mb) / bandwidth_gbps
}

/// Time for a binary-tree all-reduce: `2·log2(n) · V / B`.
///
/// # Panics
///
/// Panics if `n == 0` or `bandwidth_gbps <= 0`.
pub fn tree_allreduce_secs(volume_mb: f64, n: u32, bandwidth_gbps: f64) -> f64 {
    assert!(n > 0, "all-reduce needs at least one member");
    assert!(bandwidth_gbps > 0.0, "bandwidth must be positive");
    if n == 1 {
        return 0.0;
    }
    2.0 * f64::from(n).log2().ceil() * mb_to_gbit(volume_mb) / bandwidth_gbps
}

/// Time for a parameter-server round with `n` workers and `shards` server
/// shards of aggregate ingress `bandwidth_gbps` each: every worker pushes
/// and pulls the full volume, so the per-shard bottleneck moves
/// `2·V·n / shards` bits: `2·V·n / (shards·B)`.
///
/// # Panics
///
/// Panics if `n == 0`, `shards == 0`, or `bandwidth_gbps <= 0`.
pub fn parameter_server_secs(volume_mb: f64, n: u32, shards: u32, bandwidth_gbps: f64) -> f64 {
    assert!(n > 0, "parameter server needs at least one worker");
    assert!(shards > 0, "parameter server needs at least one shard");
    assert!(bandwidth_gbps > 0.0, "bandwidth must be positive");
    if n == 1 {
        return 0.0;
    }
    2.0 * mb_to_gbit(volume_mb) * f64::from(n) / (f64::from(shards) * bandwidth_gbps)
}

/// Time for an in-network (switch-aggregated) gradient round: every worker
/// streams its gradients up to the rack switch while simultaneously
/// receiving the running aggregate on the full-duplex downlink, so the
/// round completes after one volume crosses each link: `V / B`, regardless
/// of `n` — half of ring all-reduce's `2(n-1)/n · V / B`. This is the
/// ATP-style "in-network computation" substrate the paper's execution
/// layer lists.
///
/// # Panics
///
/// Panics if `n == 0` or `bandwidth_gbps <= 0`.
pub fn in_network_allreduce_secs(volume_mb: f64, n: u32, bandwidth_gbps: f64) -> f64 {
    assert!(n > 0, "aggregation needs at least one member");
    assert!(bandwidth_gbps > 0.0, "bandwidth must be positive");
    if n == 1 {
        return 0.0;
    }
    mb_to_gbit(volume_mb) / bandwidth_gbps
}

/// Time for a hierarchical all-reduce: intra-node ring over `gpus_per_node`
/// members at `intra_gbps`, then an inter-node ring over `nodes` members at
/// `inter_gbps` (on the reduced volume), then intra-node broadcast (folded
/// into the first term's return path).
///
/// # Panics
///
/// Panics if any count is zero or any bandwidth nonpositive.
pub fn hierarchical_allreduce_secs(
    volume_mb: f64,
    nodes: u32,
    gpus_per_node: u32,
    intra_gbps: f64,
    inter_gbps: f64,
) -> f64 {
    assert!(nodes > 0 && gpus_per_node > 0, "need at least one member");
    let intra = ring_allreduce_secs(volume_mb, gpus_per_node, intra_gbps);
    let inter = ring_allreduce_secs(volume_mb, nodes, inter_gbps);
    intra + inter
}

/// The narrowest bandwidth (Gbit/s) connecting a worker placement, taking
/// the intra-node tier when all workers share one node.
pub fn bottleneck_bandwidth_gbps(cluster: &Cluster, worker_nodes: &[NodeId]) -> f64 {
    let tier = cluster.topology().bottleneck_tier(worker_nodes);
    cluster.topology().speeds().bandwidth_gbps(tier)
}

/// Intra-node bandwidth (Gbit/s) for a given GPU model under the cluster's
/// configured speeds (NVLink when present, PCIe otherwise).
pub fn intra_node_bandwidth_gbps(cluster: &Cluster, gpu_model: GpuModel) -> f64 {
    let speeds = cluster.topology().speeds();
    if gpu_model.spec().has_nvlink {
        speeds.bandwidth_gbps(BandwidthTier::IntraNodeNvlink)
    } else {
        speeds.bandwidth_gbps(BandwidthTier::IntraNodePcie)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacc_cluster::ClusterSpec;

    #[test]
    fn ring_is_bandwidth_optimal_and_flat() {
        let t8 = ring_allreduce_secs(1000.0, 8, 100.0);
        let t64 = ring_allreduce_secs(1000.0, 64, 100.0);
        // 2(n-1)/n approaches 2: growing n barely increases time.
        assert!(t64 / t8 < 1.15);
        assert!(t64 > t8);
        // Single member: no communication.
        assert_eq!(ring_allreduce_secs(1000.0, 1, 100.0), 0.0);
    }

    #[test]
    fn tree_pays_log_factor() {
        let ring = ring_allreduce_secs(1000.0, 16, 100.0);
        let tree = tree_allreduce_secs(1000.0, 16, 100.0);
        // log2(16)=4 rounds vs <2 effective rounds for ring.
        assert!(tree > 2.0 * ring);
    }

    #[test]
    fn ps_scales_linearly_in_workers() {
        let t4 = parameter_server_secs(1000.0, 4, 1, 100.0);
        let t16 = parameter_server_secs(1000.0, 16, 1, 100.0);
        assert!((t16 / t4 - 4.0).abs() < 1e-9);
        // Sharding divides the bottleneck.
        let sharded = parameter_server_secs(1000.0, 16, 4, 100.0);
        assert!((t16 / sharded - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ps_crosses_over_ring_as_n_grows() {
        // At small n a sharded PS can beat tree, but ring wins at scale.
        let n = 32;
        let ring = ring_allreduce_secs(1000.0, n, 100.0);
        let ps = parameter_server_secs(1000.0, n, 2, 100.0);
        assert!(ps > ring);
    }

    #[test]
    fn hierarchical_beats_flat_ring_across_nodes() {
        // 4 nodes x 8 GPUs: flat ring over 32 members at inter-node speed
        // vs NVLink intra + 4-member inter ring.
        let flat = ring_allreduce_secs(1000.0, 32, 100.0);
        let hier = hierarchical_allreduce_secs(1000.0, 4, 8, 600.0, 100.0);
        assert!(hier < flat);
    }

    #[test]
    fn in_network_is_flat_and_fast() {
        let t2 = in_network_allreduce_secs(1000.0, 2, 100.0);
        let t64 = in_network_allreduce_secs(1000.0, 64, 100.0);
        assert_eq!(t2, t64, "switch aggregation is independent of n");
        // Never slower than ring on the same link.
        assert!(t64 <= ring_allreduce_secs(1000.0, 64, 100.0) + 1e-12);
        assert_eq!(in_network_allreduce_secs(1000.0, 1, 100.0), 0.0);
    }

    #[test]
    fn exact_ring_value() {
        // V=1024 MiB = 8 Gbit, n=2, B=100: 2*(1/2)*8/100 = 0.08 s.
        let t = ring_allreduce_secs(1024.0, 2, 100.0);
        assert!((t - 0.08).abs() < 1e-12);
    }

    #[test]
    fn bottleneck_lookup_from_cluster() {
        let c = Cluster::new(ClusterSpec::uniform(2, 2, GpuModel::A100, 8));
        let n0 = NodeId::from_index(0);
        let n1 = NodeId::from_index(1);
        let n2 = NodeId::from_index(2);
        // Single node: NVLink.
        assert_eq!(bottleneck_bandwidth_gbps(&c, &[n0]), 600.0);
        // Same rack: 100 Gbps.
        assert_eq!(bottleneck_bandwidth_gbps(&c, &[n0, n1]), 100.0);
        // Cross rack: oversubscribed.
        assert!((bottleneck_bandwidth_gbps(&c, &[n0, n2]) - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn intra_node_respects_nvlink_presence() {
        let c = Cluster::new(ClusterSpec::uniform(1, 1, GpuModel::A100, 8));
        assert_eq!(intra_node_bandwidth_gbps(&c, GpuModel::A100), 600.0);
        assert_eq!(intra_node_bandwidth_gbps(&c, GpuModel::Rtx3090), 128.0);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_members_rejected() {
        ring_allreduce_secs(1.0, 0, 1.0);
    }
}
