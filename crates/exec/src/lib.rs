//! # tacc-exec
//!
//! Layer 4 of the TACC workflow abstraction — the **execution layer**.
//!
//! The paper's execution layer "connects to the underlying runtime system
//! and provisions the user program", on hardware with RDMA interconnects, a
//! networked file system and in-network computation, and supports multiple
//! runtime systems simultaneously with fail-safe switching between them.
//! This crate models that layer analytically:
//!
//! * [`comm`] — iteration-time models for the distributed-training runtimes
//!   (ring / tree / hierarchical all-reduce and parameter server) over the
//!   cluster's bandwidth tiers. These produce the scaling curves of
//!   experiment F6 and the placement slowdowns of T2.
//! * [`ExecModel`] — turns a compiled task plus its placement into an
//!   [`ExecutionPlan`]: which runtime runs it, the per-iteration compute
//!   and communication times, and the end-to-end *slowdown factor* the
//!   platform stretches the job's service time by.
//! * [`CheckpointPolicy`] — periodic checkpointing: write overhead while
//!   running, bounded progress loss on preemption or failure (experiment
//!   F5).
//! * [`FailureInjector`] — deterministic per-node MTBF failure sampling,
//!   and the fail-safe runtime-switching behaviour of experiment F7.
//!
//! ## Example
//!
//! ```
//! use tacc_cluster::{Cluster, ClusterSpec, GpuModel, NodeId};
//! use tacc_exec::{comm, ExecConfig, ExecModel};
//! use tacc_workload::{ModelProfile, RuntimePreference};
//!
//! let cluster = Cluster::new(ClusterSpec::uniform(1, 2, GpuModel::A100, 8));
//! let model = ExecModel::new(ExecConfig::default());
//! // An 8-GPU single-node job communicates over NVLink: tiny slowdown.
//! let plan = model.plan_training(
//!     &cluster,
//!     RuntimePreference::AllReduce,
//!     &[NodeId::from_index(0)],
//!     8,
//!     GpuModel::A100,
//!     &ModelProfile::resnet50_like(),
//! );
//! assert!(plan.slowdown >= 1.0 && plan.slowdown < 1.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
pub mod comm;
mod failures;
mod model;
mod telemetry;

pub use checkpoint::CheckpointPolicy;
pub use failures::{FailoverPolicy, FailureInjector, RuntimeFault};
pub use model::{ExecConfig, ExecModel, ExecutionPlan};
pub use telemetry::ExecTelemetry;
