//! The execution model: placement + instruction → slowdown.

use serde::{Deserialize, Serialize};

use tacc_cluster::{Cluster, GpuModel, NodeId};
use tacc_workload::{ModelProfile, RuntimePreference};

use crate::comm;

/// Configuration of the execution layer's cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecConfig {
    /// Fixed per-iteration overhead (kernel launch, data loading overlap
    /// slack, collective latency terms), seconds.
    pub iter_overhead_secs: f64,
    /// Parameter-server shard count used when a task selects the PS runtime.
    pub ps_shards: u32,
    /// Whether multi-node all-reduce uses the hierarchical (NVLink-aware)
    /// variant; plain flat ring otherwise. Ablation knob for F6.
    pub hierarchical_allreduce: bool,
    /// Fractional slowdown per co-located tenant job on a shared node
    /// (PCIe/host-memory/NIC contention). 0 disables interference.
    pub interference_per_cotenant: f64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            iter_overhead_secs: 0.01,
            ps_shards: 4,
            hierarchical_allreduce: true,
            interference_per_cotenant: 0.03,
        }
    }
}

/// What the execution layer decided for a placed task, and what it costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// The runtime system actually used (never `Auto`).
    pub runtime: RuntimePreference,
    /// Per-iteration compute time on this hardware, seconds.
    pub compute_secs: f64,
    /// Per-iteration communication time on this placement, seconds.
    pub comm_secs: f64,
    /// End-to-end slowdown factor (≥ 1) relative to ideal execution of the
    /// same gang: multiply the job's service time by this.
    pub slowdown: f64,
    /// Scaling efficiency (0..=1): useful compute fraction of an iteration.
    pub efficiency: f64,
}

/// The execution layer's analytic model.
///
/// *Ideal* execution — the baseline the slowdown is relative to — is the
/// same gang on reference hardware (A100) with zero communication cost.
/// A job's recorded service time is its runtime under ideal execution, so
/// `actual_runtime = service_secs × slowdown`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecModel {
    config: ExecConfig,
}

impl ExecModel {
    /// Creates a model from configuration.
    pub fn new(config: ExecConfig) -> Self {
        ExecModel { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> ExecConfig {
        self.config
    }

    /// Plans a training task: `total_gpus` GPUs of `gpu_model` spread over
    /// `worker_nodes` (deduplicated internally), synchronizing `profile`'s
    /// gradients via `runtime`.
    ///
    /// `RuntimePreference::Auto` resolves to all-reduce for multi-GPU tasks
    /// and single-process otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `total_gpus == 0` or `worker_nodes` is empty.
    pub fn plan_training(
        &self,
        cluster: &Cluster,
        runtime: RuntimePreference,
        worker_nodes: &[NodeId],
        total_gpus: u32,
        gpu_model: GpuModel,
        profile: &ModelProfile,
    ) -> ExecutionPlan {
        assert!(total_gpus > 0, "training needs at least one GPU");
        assert!(!worker_nodes.is_empty(), "placement has no nodes");
        let mut nodes: Vec<NodeId> = worker_nodes.to_vec();
        nodes.sort_unstable();
        nodes.dedup();

        let runtime = match runtime {
            RuntimePreference::Auto if total_gpus > 1 => RuntimePreference::AllReduce,
            RuntimePreference::Auto => RuntimePreference::SingleProcess,
            explicit => explicit,
        };

        // Compute: reference iteration time scaled by hardware speed.
        let reference = GpuModel::A100.relative_speed();
        let compute_secs = profile.compute_secs_per_iter * reference / gpu_model.relative_speed();

        let comm_secs = match runtime {
            RuntimePreference::SingleProcess => 0.0,
            RuntimePreference::AllReduce => {
                self.allreduce_secs(cluster, &nodes, total_gpus, gpu_model, profile.param_mb)
            }
            RuntimePreference::ParameterServer => {
                let bw = comm::bottleneck_bandwidth_gbps(cluster, &nodes);
                comm::parameter_server_secs(profile.param_mb, total_gpus, self.config.ps_shards, bw)
            }
            RuntimePreference::InNetworkAggregation => {
                // Switch aggregation works at the rack's ToR: single-rack
                // gangs get line-rate aggregation; anything wider falls
                // back to the all-reduce path.
                if nodes.len() == 1 {
                    let bw = comm::intra_node_bandwidth_gbps(cluster, gpu_model);
                    comm::ring_allreduce_secs(profile.param_mb, total_gpus, bw)
                } else if cluster.topology().racks_spanned(&nodes) == 1 {
                    let bw = comm::bottleneck_bandwidth_gbps(cluster, &nodes);
                    comm::in_network_allreduce_secs(profile.param_mb, total_gpus, bw)
                } else {
                    self.allreduce_secs(cluster, &nodes, total_gpus, gpu_model, profile.param_mb)
                }
            }
            RuntimePreference::Auto => unreachable!("resolved above"),
        };

        let actual_iter = compute_secs + comm_secs + self.config.iter_overhead_secs;
        // Ideal: reference-hardware compute only.
        let ideal_iter = profile.compute_secs_per_iter;
        let slowdown = (actual_iter / ideal_iter).max(1.0);
        let efficiency = (compute_secs / actual_iter).clamp(0.0, 1.0);
        ExecutionPlan {
            runtime,
            compute_secs,
            comm_secs,
            slowdown,
            efficiency,
        }
    }

    /// Plans a non-training task (interactive, inference, CPU batch): no
    /// gradient synchronization, hardware speed still applies to GPU kinds.
    pub fn plan_simple(&self, gpu_model: Option<GpuModel>) -> ExecutionPlan {
        let slowdown = match gpu_model {
            Some(m) => (GpuModel::A100.relative_speed() / m.relative_speed()).max(1.0),
            None => 1.0,
        };
        ExecutionPlan {
            runtime: RuntimePreference::SingleProcess,
            compute_secs: 0.0,
            comm_secs: 0.0,
            slowdown,
            efficiency: 1.0,
        }
    }

    /// Co-location interference factor (≥ 1) for a placement: the mean
    /// number of *other* leases sharing the job's nodes, scaled by the
    /// configured per-cotenant slowdown.
    ///
    /// Evaluated once when the job starts (a documented simplification —
    /// neighbours that arrive later do not retroactively slow it), which is
    /// why spreading across emptier nodes pays off for interference even
    /// though it costs communication locality.
    pub fn interference_factor(&self, cluster: &Cluster, worker_nodes: &[NodeId]) -> f64 {
        if self.config.interference_per_cotenant <= 0.0 || worker_nodes.is_empty() {
            return 1.0;
        }
        let mut nodes: Vec<NodeId> = worker_nodes.to_vec();
        nodes.sort_unstable();
        nodes.dedup();
        let cotenants: f64 = nodes
            .iter()
            .filter_map(|&id| cluster.node(id))
            .map(|n| n.lease_count().saturating_sub(1) as f64)
            .sum::<f64>()
            / nodes.len() as f64;
        1.0 + self.config.interference_per_cotenant * cotenants
    }

    fn allreduce_secs(
        &self,
        cluster: &Cluster,
        nodes: &[NodeId],
        total_gpus: u32,
        gpu_model: GpuModel,
        param_mb: f64,
    ) -> f64 {
        if nodes.len() == 1 {
            let bw = comm::intra_node_bandwidth_gbps(cluster, gpu_model);
            return comm::ring_allreduce_secs(param_mb, total_gpus, bw);
        }
        let inter_bw = comm::bottleneck_bandwidth_gbps(cluster, nodes);
        if self.config.hierarchical_allreduce {
            let intra_bw = comm::intra_node_bandwidth_gbps(cluster, gpu_model);
            let node_count = u32::try_from(nodes.len()).expect("node count fits u32");
            let gpus_per_node = (total_gpus / node_count).max(1);
            comm::hierarchical_allreduce_secs(
                param_mb,
                node_count,
                gpus_per_node,
                intra_bw,
                inter_bw,
            )
        } else {
            comm::ring_allreduce_secs(param_mb, total_gpus, inter_bw)
        }
    }
}

impl Default for ExecModel {
    fn default() -> Self {
        ExecModel::new(ExecConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacc_cluster::ClusterSpec;

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec::uniform(2, 4, GpuModel::A100, 8))
    }

    fn nodes(ids: &[usize]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId::from_index(i)).collect()
    }

    #[test]
    fn single_gpu_has_unit_slowdown_on_reference_hw() {
        let plan = ExecModel::default().plan_training(
            &cluster(),
            RuntimePreference::Auto,
            &nodes(&[0]),
            1,
            GpuModel::A100,
            &ModelProfile::resnet50_like(),
        );
        assert_eq!(plan.runtime, RuntimePreference::SingleProcess);
        assert_eq!(plan.comm_secs, 0.0);
        // Only the fixed iteration overhead separates it from ideal.
        assert!(plan.slowdown < 1.1);
    }

    #[test]
    fn slower_hardware_stretches_compute() {
        let a100 = ExecModel::default().plan_simple(Some(GpuModel::A100));
        let v100 = ExecModel::default().plan_simple(Some(GpuModel::V100));
        let cpu = ExecModel::default().plan_simple(None);
        assert_eq!(a100.slowdown, 1.0);
        assert!(v100.slowdown > 2.0); // A100 ≈ 2.5x V100
        assert_eq!(cpu.slowdown, 1.0);
    }

    #[test]
    fn cross_rack_placement_is_slower_than_single_rack() {
        let m = ExecModel::default();
        let profile = ModelProfile::gpt2_like();
        let same_rack = m.plan_training(
            &cluster(),
            RuntimePreference::AllReduce,
            &nodes(&[0, 1]),
            16,
            GpuModel::A100,
            &profile,
        );
        let cross_rack = m.plan_training(
            &cluster(),
            RuntimePreference::AllReduce,
            &nodes(&[0, 4]),
            16,
            GpuModel::A100,
            &profile,
        );
        assert!(cross_rack.comm_secs > same_rack.comm_secs);
        assert!(cross_rack.slowdown > same_rack.slowdown);
        assert!(cross_rack.efficiency < same_rack.efficiency);
    }

    #[test]
    fn hierarchical_beats_flat_for_multinode() {
        let profile = ModelProfile::gpt2_like();
        let hier = ExecModel::new(ExecConfig {
            hierarchical_allreduce: true,
            ..ExecConfig::default()
        });
        let flat = ExecModel::new(ExecConfig {
            hierarchical_allreduce: false,
            ..ExecConfig::default()
        });
        let placement = nodes(&[0, 1, 2, 3]);
        let h = hier.plan_training(
            &cluster(),
            RuntimePreference::AllReduce,
            &placement,
            32,
            GpuModel::A100,
            &profile,
        );
        let f = flat.plan_training(
            &cluster(),
            RuntimePreference::AllReduce,
            &placement,
            32,
            GpuModel::A100,
            &profile,
        );
        assert!(h.comm_secs < f.comm_secs);
    }

    #[test]
    fn in_network_beats_allreduce_within_a_rack() {
        let m = ExecModel::default();
        let profile = ModelProfile::gpt2_like();
        // Nodes 0..4 share rack 0 in the 2x4 cluster.
        let placement = nodes(&[0, 1, 2, 3]);
        let ar = m.plan_training(
            &cluster(),
            RuntimePreference::AllReduce,
            &placement,
            32,
            GpuModel::A100,
            &profile,
        );
        let atp = m.plan_training(
            &cluster(),
            RuntimePreference::InNetworkAggregation,
            &placement,
            32,
            GpuModel::A100,
            &profile,
        );
        assert!(
            atp.comm_secs < ar.comm_secs,
            "atp {} vs ar {}",
            atp.comm_secs,
            ar.comm_secs
        );
        // Cross-rack placement falls back to the all-reduce cost.
        let wide = nodes(&[0, 4]);
        let atp_wide = m.plan_training(
            &cluster(),
            RuntimePreference::InNetworkAggregation,
            &wide,
            16,
            GpuModel::A100,
            &profile,
        );
        let ar_wide = m.plan_training(
            &cluster(),
            RuntimePreference::AllReduce,
            &wide,
            16,
            GpuModel::A100,
            &profile,
        );
        assert_eq!(atp_wide.comm_secs, ar_wide.comm_secs);
    }

    #[test]
    fn ps_worse_than_allreduce_at_scale() {
        let m = ExecModel::default();
        let profile = ModelProfile::gpt2_like();
        let placement = nodes(&[0, 1, 2, 3]);
        let ar = m.plan_training(
            &cluster(),
            RuntimePreference::AllReduce,
            &placement,
            32,
            GpuModel::A100,
            &profile,
        );
        let ps = m.plan_training(
            &cluster(),
            RuntimePreference::ParameterServer,
            &placement,
            32,
            GpuModel::A100,
            &profile,
        );
        assert!(ps.comm_secs > ar.comm_secs);
    }

    #[test]
    fn duplicate_worker_nodes_are_deduped() {
        let m = ExecModel::default();
        let profile = ModelProfile::resnet50_like();
        // Gang of 8 workers all on node 0 (repeated ids, as the scheduler
        // reports them) must be treated as single-node NVLink placement.
        let plan = m.plan_training(
            &cluster(),
            RuntimePreference::AllReduce,
            &nodes(&[0, 0, 0, 0, 0, 0, 0, 0]),
            8,
            GpuModel::A100,
            &profile,
        );
        let single = m.plan_training(
            &cluster(),
            RuntimePreference::AllReduce,
            &nodes(&[0]),
            8,
            GpuModel::A100,
            &profile,
        );
        assert_eq!(plan, single);
    }

    #[test]
    fn efficiency_drops_with_gradient_size() {
        let m = ExecModel::default();
        let placement = nodes(&[0, 1]);
        let small = m.plan_training(
            &cluster(),
            RuntimePreference::AllReduce,
            &placement,
            16,
            GpuModel::A100,
            &ModelProfile::small_cnn(),
        );
        let big = m.plan_training(
            &cluster(),
            RuntimePreference::AllReduce,
            &placement,
            16,
            GpuModel::A100,
            &ModelProfile::gpt2_like(),
        );
        assert!(big.efficiency < small.efficiency + 0.2);
        assert!(big.comm_secs > small.comm_secs);
    }

    #[test]
    fn interference_scales_with_cotenancy() {
        use tacc_cluster::ResourceVec;
        let mut c = cluster();
        let m = ExecModel::default();
        let n0 = NodeId::from_index(0);
        // Exclusive node: no interference (the job's own lease doesn't count).
        c.allocate(1, &[(n0, ResourceVec::gpus_only(2))])
            .expect("fits");
        assert_eq!(m.interference_factor(&c, &[n0]), 1.0);
        // Two co-tenants: 2 × 3% slowdown.
        c.allocate(2, &[(n0, ResourceVec::gpus_only(2))])
            .expect("fits");
        c.allocate(3, &[(n0, ResourceVec::gpus_only(2))])
            .expect("fits");
        assert!((m.interference_factor(&c, &[n0]) - 1.06).abs() < 1e-12);
        // Mixed placement averages across nodes.
        let n1 = NodeId::from_index(1);
        c.allocate(4, &[(n1, ResourceVec::gpus_only(8))])
            .expect("fits");
        let f = m.interference_factor(&c, &[n0, n1]);
        assert!((f - (1.0 + 0.03 * 1.0)).abs() < 1e-12); // (2 + 0)/2 co-tenants
                                                         // Disabled via config.
        let off = ExecModel::new(ExecConfig {
            interference_per_cotenant: 0.0,
            ..ExecConfig::default()
        });
        assert_eq!(off.interference_factor(&c, &[n0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_rejected() {
        ExecModel::default().plan_training(
            &cluster(),
            RuntimePreference::Auto,
            &nodes(&[0]),
            0,
            GpuModel::A100,
            &ModelProfile::resnet50_like(),
        );
    }
}
