//! # tacc-par
//!
//! Bounded fork–join parallelism shared by the experiment runner
//! (`tacc-bench`) and the workspace lint scanner (`tacc-lint`).
//!
//! [`par_map`] runs one closure per item on its own thread, with a global
//! slot pool bounding how many closures *compute* at once. Calls nest:
//! the runner fans out over experiments while an experiment fans out over
//! its sweep cells. A thread that is only waiting for children donates its
//! slot back to the pool, so nesting cannot deadlock and total active
//! computation never exceeds the configured parallelism.
//!
//! Results come back in item order regardless of completion order, so
//! parallel and serial runs produce byte-identical output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Instant;

struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Semaphore {
    fn acquire(&self) {
        let mut permits = self.permits.lock().unwrap();
        while *permits == 0 {
            permits = self.available.wait(permits).unwrap();
        }
        *permits -= 1;
    }

    fn release(&self) {
        *self.permits.lock().unwrap() += 1;
        self.available.notify_one();
    }
}

static SLOTS: OnceLock<Semaphore> = OnceLock::new();
static CONFIGURED: Mutex<Option<usize>> = Mutex::new(None);
static BUSY_NANOS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static HELD_SINCE: Cell<Option<Instant>> = const { Cell::new(None) };
}

fn holds_slot() -> bool {
    HELD_SINCE.with(|h| h.get()).is_some()
}

fn note_acquired() {
    HELD_SINCE.with(|h| h.set(Some(Instant::now())));
}

fn note_released() {
    if let Some(since) = HELD_SINCE.with(|h| h.take()) {
        BUSY_NANOS.fetch_add(since.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Sets the global parallelism (number of concurrently-computing closures).
///
/// Must be called before the first [`par_map`]; later calls are ignored and
/// return `false`.
pub fn set_parallelism(n: usize) -> bool {
    let mut configured = CONFIGURED.lock().unwrap();
    if SLOTS.get().is_some() {
        return false;
    }
    *configured = Some(n.max(1));
    true
}

/// The effective parallelism: the configured value, or every available core.
pub fn parallelism() -> usize {
    let configured = *CONFIGURED.lock().unwrap();
    configured.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

fn slots() -> &'static Semaphore {
    SLOTS.get_or_init(|| Semaphore {
        permits: Mutex::new(parallelism()),
        available: Condvar::new(),
    })
}

/// Total time spent *holding* a computation slot, in seconds.
///
/// Slots are held only while a closure actively computes (waiting parents
/// donate theirs), so this is the suite's aggregate compute time — the
/// honest estimate of what a fully serial run would cost, regardless of
/// how much the concurrent per-item spans overlap.
pub fn busy_secs() -> f64 {
    BUSY_NANOS.load(Ordering::Relaxed) as f64 / 1e9
}

/// Holds one computation slot; released on drop so a panicking closure
/// cannot strand the pool.
struct SlotGuard;

impl SlotGuard {
    fn acquire() -> SlotGuard {
        slots().acquire();
        note_acquired();
        SlotGuard
    }
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        note_released();
        slots().release();
    }
}

/// Maps `f` over `items` in parallel, returning results in item order.
///
/// Each item gets its own scoped thread; the global slot pool decides how
/// many run at once. Safe to call from inside another `par_map` closure
/// (the caller's slot is donated while it waits).
///
/// # Panics
///
/// Re-raises the first panicking closure's payload after all threads
/// finish.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let donated = holds_slot();
    if donated {
        note_released();
        slots().release();
    }
    let f = &f;
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .into_iter()
            .map(|item| {
                scope.spawn(move || {
                    let _slot = SlotGuard::acquire();
                    f(item)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
    });
    let out = results
        .into_iter()
        .map(|r| r.unwrap_or_else(|payload| std::panic::resume_unwind(payload)))
        .collect();
    if donated {
        slots().acquire();
        note_acquired();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let out = par_map((0..32).collect(), |i: i32| i * 2);
        assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn nests_without_deadlock() {
        let out = par_map((0..4).collect(), |i: i32| {
            par_map((0..4).collect(), move |j: i32| i * 10 + j)
        });
        assert_eq!(out[3], vec![30, 31, 32, 33]);
    }
}
