//! The compiler: schema in, execution instruction out.

use std::fmt;

use tacc_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use tacc_workload::{RuntimePreference, TaskSchema};

use crate::cache::{ChunkCache, ChunkId};
use crate::instruction::{CompiledTask, ExecutionInstruction, InstructionKind, Provisioning};

/// Errors from the compiler layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// The schema failed validation; the message explains why.
    InvalidSchema(String),
    /// The schema JSON could not be parsed.
    Parse(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::InvalidSchema(msg) => write!(f, "invalid task schema: {msg}"),
            CompileError::Parse(msg) => write!(f, "cannot parse task schema: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Configuration of the compiler layer's cost model and cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompilerConfig {
    /// Shared chunk-cache capacity in MiB (registry + NFS cache tier).
    pub cache_capacity_mb: u64,
    /// Transfer bandwidth for cache misses, MiB/s (registry/NFS over the
    /// datacenter fabric).
    pub fetch_bandwidth_mbps: f64,
    /// Fixed setup latency per compilation, seconds (container start,
    /// directory setup, interconnect wiring).
    pub base_latency_secs: f64,
    /// Dataset shard size in MiB (datasets are chunked at this granularity
    /// so partial overlap still deduplicates).
    pub dataset_shard_mb: u32,
}

impl Default for CompilerConfig {
    fn default() -> Self {
        CompilerConfig {
            cache_capacity_mb: 200_000, // 200 GB cache tier
            fetch_bandwidth_mbps: 1_000.0,
            base_latency_secs: 5.0,
            dataset_shard_mb: 512,
        }
    }
}

/// The compiler layer: parses schemas, resolves the runtime, and emits
/// execution instructions while maintaining the delta cache.
///
/// One `Compiler` instance models one cluster's provisioning tier; the
/// cache persists across compilations, which is precisely the mechanism
/// the paper describes for repeated submissions.
#[derive(Debug)]
pub struct Compiler {
    config: CompilerConfig,
    cache: ChunkCache,
    compilations: u64,
    metrics: Option<CompilerMetrics>,
}

/// Handles into an attached [`MetricsRegistry`] (`tacc_compiler_*` series).
#[derive(Debug)]
struct CompilerMetrics {
    compilations: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    transferred_mb: Counter,
    cache_hit_rate: Gauge,
    provisioning_latency: Histogram,
}

/// Base image sizes in MiB; looked up by name, defaulting for unknown images.
fn image_size_mb(image: &str) -> u32 {
    match image {
        "pytorch-2.1-cuda12" => 9_500,
        "pytorch-1.13-cuda11" => 8_200,
        "tensorflow-2.14" => 7_800,
        "jax-0.4-cuda12" => 6_900,
        _ => 5_000,
    }
}

impl Compiler {
    /// Creates a compiler with the given configuration.
    pub fn new(config: CompilerConfig) -> Self {
        Compiler {
            cache: ChunkCache::new(config.cache_capacity_mb),
            config,
            compilations: 0,
            metrics: None,
        }
    }

    /// Attaches operational metrics: subsequent compilations update the
    /// `tacc_compiler_*` series in `registry` (compilation and chunk
    /// hit/miss counters, MiB transferred, byte hit-rate gauge, and a
    /// provisioning-latency histogram in simulated seconds).
    pub fn attach_registry(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(CompilerMetrics {
            compilations: registry.counter("tacc_compiler_compilations_total", &[]),
            cache_hits: registry.counter("tacc_compiler_cache_hits_total", &[]),
            cache_misses: registry.counter("tacc_compiler_cache_misses_total", &[]),
            transferred_mb: registry.counter("tacc_compiler_transferred_mb_total", &[]),
            cache_hit_rate: registry.gauge("tacc_compiler_cache_byte_hit_rate", &[]),
            provisioning_latency: registry
                .histogram("tacc_compiler_provisioning_latency_seconds", &[]),
        });
    }

    /// The configuration in use.
    pub fn config(&self) -> CompilerConfig {
        self.config
    }

    /// Read access to the chunk cache (for experiment reporting).
    pub fn cache(&self) -> &ChunkCache {
        &self.cache
    }

    /// Number of compilations performed.
    pub fn compilations(&self) -> u64 {
        self.compilations
    }

    /// Parses a JSON task description and compiles it.
    ///
    /// # Errors
    ///
    /// [`CompileError::Parse`] for malformed JSON, plus anything
    /// [`Compiler::compile`] returns.
    pub fn compile_json(&mut self, json: &str) -> Result<CompiledTask, CompileError> {
        let schema: TaskSchema =
            serde_json::from_str(json).map_err(|e| CompileError::Parse(e.to_string()))?;
        self.compile(&schema)
    }

    /// Compiles a schema into an execution instruction, charging the delta
    /// cache for provisioning.
    ///
    /// # Errors
    ///
    /// [`CompileError::InvalidSchema`] if the schema fails validation.
    pub fn compile(&mut self, schema: &TaskSchema) -> Result<CompiledTask, CompileError> {
        schema.validate().map_err(CompileError::InvalidSchema)?;
        self.compilations += 1;

        let kind = Self::instruction_kind(schema);
        let runtime = Self::resolve_runtime(schema);

        // Decompose the environment into content-addressed chunks and pull
        // each through the cache.
        let mut hits: u32 = 0;
        let mut misses: u32 = 0;
        let mut transferred_mb: f64 = 0.0;
        let mut total_mb: f64 = 0.0;
        let mut pull = |cache: &mut ChunkCache, name: &str, size_mb: u32| {
            total_mb += f64::from(size_mb);
            if cache.fetch(ChunkId::of(name, size_mb), size_mb) {
                hits += 1;
            } else {
                misses += 1;
                transferred_mb += f64::from(size_mb);
            }
        };

        if kind == InstructionKind::ContainerImage {
            let img_mb = image_size_mb(&schema.env.image);
            pull(
                &mut self.cache,
                &format!("image:{}", schema.env.image),
                img_mb,
            );
        }
        for (dep, size) in &schema.env.dependencies {
            pull(&mut self.cache, &format!("dep:{dep}"), *size);
        }
        if let Some((dataset, size)) = &schema.env.dataset {
            // Shard the dataset so partial overlap across jobs still hits.
            let shard = self.config.dataset_shard_mb;
            let full_shards = size / shard;
            for i in 0..full_shards {
                pull(&mut self.cache, &format!("dataset:{dataset}:{i}"), shard);
            }
            let tail = size % shard;
            if tail > 0 {
                pull(&mut self.cache, &format!("dataset:{dataset}:tail"), tail);
            }
        }
        // User code is unique per submission: always transferred, never cached.
        total_mb += f64::from(schema.env.code_mb);
        transferred_mb += f64::from(schema.env.code_mb);

        let latency_secs =
            self.config.base_latency_secs + transferred_mb / self.config.fetch_bandwidth_mbps;

        if let Some(m) = &self.metrics {
            m.compilations.inc();
            m.cache_hits.inc_by(u64::from(hits));
            m.cache_misses.inc_by(u64::from(misses));
            m.transferred_mb.inc_by(transferred_mb.round() as u64);
            m.cache_hit_rate.set(self.cache.stats().byte_hit_rate());
            m.provisioning_latency.observe(latency_secs);
        }

        Ok(CompiledTask {
            schema: schema.clone(),
            instruction: ExecutionInstruction {
                kind,
                runtime,
                workers: schema.workers,
                payload_mb: total_mb,
            },
            provisioning: Provisioning {
                transferred_mb,
                total_mb,
                chunk_hits: hits,
                chunk_misses: misses,
                latency_secs,
            },
        })
    }

    /// Static instruction-form choice (paper Table 1: "static
    /// characteristic: language, task size").
    fn instruction_kind(schema: &TaskSchema) -> InstructionKind {
        if schema.kind.is_cpu_only() && schema.env.total_mb() < 100 {
            InstructionKind::ShellCommands
        } else {
            InstructionKind::ContainerImage
        }
    }

    /// Resolves `Auto` runtime preferences from static task characteristics:
    /// large gangs with big models synchronize via parameter servers only if
    /// asked; the default for distributed training is all-reduce, single
    /// workers run as plain processes.
    fn resolve_runtime(schema: &TaskSchema) -> RuntimePreference {
        match schema.runtime {
            RuntimePreference::Auto => {
                if schema.workers > 1 || schema.resources.gpus > 1 {
                    RuntimePreference::AllReduce
                } else {
                    RuntimePreference::SingleProcess
                }
            }
            explicit => explicit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacc_cluster::ResourceVec;
    use tacc_workload::{GroupId, RuntimeEnv, TaskKind};

    fn schema() -> TaskSchema {
        TaskSchema::builder("t", GroupId::from_index(0))
            .env(RuntimeEnv {
                image: "pytorch-2.1-cuda12".to_owned(),
                dependencies: vec![("common-ml-stack".to_owned(), 1800)],
                dataset: Some(("wikitext".to_owned(), 600)),
                code_mb: 5,
            })
            .build()
            .expect("valid")
    }

    #[test]
    fn cold_then_warm_compilation() {
        let mut c = Compiler::new(CompilerConfig::default());
        let first = c.compile(&schema()).expect("compiles");
        // Cold: everything transfers.
        assert_eq!(first.provisioning.chunk_hits, 0);
        assert!(first.provisioning.transferred_mb >= first.provisioning.total_mb - 1e-9);
        let second = c.compile(&schema()).expect("compiles");
        // Warm: only the per-job code moves.
        assert_eq!(second.provisioning.chunk_misses, 0);
        assert!((second.provisioning.transferred_mb - 5.0).abs() < 1e-9);
        assert!(second.provisioning.latency_secs < first.provisioning.latency_secs);
        assert!(second.provisioning.delta_savings() > 0.99);
        assert_eq!(c.compilations(), 2);
    }

    #[test]
    fn dataset_sharding_dedupes_partial_overlap() {
        let mut c = Compiler::new(CompilerConfig::default());
        c.compile(&schema()).expect("compiles");
        // Same dataset, different deps: dataset shards still hit.
        let mut other = schema();
        other.env.dependencies = vec![("transformers".to_owned(), 450)];
        let out = c.compile(&other).expect("compiles");
        // Misses are exactly the new dep bundle.
        assert_eq!(out.provisioning.chunk_misses, 1);
        assert!(out.provisioning.chunk_hits >= 2); // image + dataset shards
    }

    #[test]
    fn shell_instruction_for_tiny_cpu_tasks() {
        let mut c = Compiler::new(CompilerConfig::default());
        let s = TaskSchema::builder("prep", GroupId::from_index(1))
            .kind(TaskKind::CpuBatch)
            .resources(ResourceVec::cpu_only(4, 8))
            .env(RuntimeEnv::image_only("busybox"))
            .build()
            .expect("valid");
        let out = c.compile(&s).expect("compiles");
        assert_eq!(out.instruction.kind, InstructionKind::ShellCommands);
        // Shell tasks don't pull the image.
        assert_eq!(out.provisioning.chunk_misses, 0);
    }

    #[test]
    fn runtime_resolution() {
        let mut c = Compiler::new(CompilerConfig::default());
        let distributed = TaskSchema::builder("ddp", GroupId::from_index(0))
            .workers(4)
            .resources(ResourceVec::gpus_only(8))
            .build()
            .expect("valid");
        let out = c.compile(&distributed).expect("compiles");
        assert_eq!(out.instruction.runtime, RuntimePreference::AllReduce);
        assert_eq!(out.instruction.workers, 4);

        let explicit = TaskSchema::builder("ps", GroupId::from_index(0))
            .workers(4)
            .resources(ResourceVec::gpus_only(8))
            .runtime(RuntimePreference::ParameterServer)
            .build()
            .expect("valid");
        let out = c.compile(&explicit).expect("compiles");
        assert_eq!(out.instruction.runtime, RuntimePreference::ParameterServer);
    }

    #[test]
    fn compile_json_round_trip() {
        if !tacc_workload::serde_json_functional() {
            return; // typecheck-only serde_json stub: nothing to round-trip
        }
        let mut c = Compiler::new(CompilerConfig::default());
        let s = schema();
        let json = serde_json::to_string(&s).expect("serializes");
        let out = c.compile_json(&json).expect("compiles");
        assert_eq!(out.schema, s);
        assert!(c.compile_json("{not json").is_err());
    }

    #[test]
    fn invalid_schema_is_rejected() {
        let mut c = Compiler::new(CompilerConfig::default());
        let mut bad = schema();
        bad.workers = 0;
        match c.compile(&bad) {
            Err(CompileError::InvalidSchema(msg)) => assert!(msg.contains("worker")),
            other => panic!("expected InvalidSchema, got {other:?}"),
        }
    }

    #[test]
    fn instruction_payload_matches_provisioning_total() {
        let mut c = Compiler::new(CompilerConfig::default());
        let out = c.compile(&schema()).expect("compiles");
        assert!((out.instruction.payload_mb - out.provisioning.total_mb).abs() < 1e-9);
        assert_eq!(out.instruction.kind, InstructionKind::ContainerImage);
    }

    #[test]
    fn distinct_images_do_not_share_chunks() {
        let mut c = Compiler::new(CompilerConfig::default());
        c.compile(&schema()).expect("compiles");
        let mut other = schema();
        other.env.image = "tensorflow-2.14".to_owned();
        let out = c.compile(&other).expect("compiles");
        // Dataset and deps hit; the new image misses.
        assert_eq!(out.provisioning.chunk_misses, 1);
        assert!(out.provisioning.transferred_mb > 5_000.0);
    }

    #[test]
    fn capacity_pressure_degrades_hit_rate() {
        let trace_schemas: Vec<TaskSchema> = (0..40)
            .map(|i| {
                let mut s = schema();
                s.env.dataset = Some((format!("dataset-{}", i % 8), 10_000));
                s
            })
            .collect();
        let run = |capacity: u64| {
            let mut c = Compiler::new(CompilerConfig {
                cache_capacity_mb: capacity,
                ..CompilerConfig::default()
            });
            for s in &trace_schemas {
                c.compile(s).expect("compiles");
            }
            c.cache().stats().byte_hit_rate()
        };
        let tight = run(30_000);
        let roomy = run(300_000);
        assert!(roomy > tight, "roomy {roomy:.3} <= tight {tight:.3}");
    }

    #[test]
    fn compilation_is_deterministic() {
        let run = || {
            let mut c = Compiler::new(CompilerConfig::default());
            let a = c.compile(&schema()).expect("compiles");
            let b = c.compile(&schema()).expect("compiles");
            (a, b)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn attached_registry_sees_cache_traffic() {
        let registry = MetricsRegistry::new();
        let mut c = Compiler::new(CompilerConfig::default());
        c.attach_registry(&registry);
        c.compile(&schema()).expect("compiles");
        c.compile(&schema()).expect("compiles");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("tacc_compiler_compilations_total"), Some(2));
        // Cold run misses everything, warm run hits everything.
        let hits = snap
            .counter("tacc_compiler_cache_hits_total")
            .expect("hits");
        let misses = snap
            .counter("tacc_compiler_cache_misses_total")
            .expect("misses");
        assert!(hits > 0 && misses > 0 && hits == misses);
        assert!(
            snap.gauge("tacc_compiler_cache_byte_hit_rate")
                .expect("rate")
                > 0.0
        );
        assert_eq!(
            snap.histogram("tacc_compiler_provisioning_latency_seconds")
                .map(|h| h.count),
            Some(2)
        );
    }

    #[test]
    fn latency_scales_with_transfer() {
        let cfg = CompilerConfig {
            fetch_bandwidth_mbps: 100.0,
            base_latency_secs: 2.0,
            ..CompilerConfig::default()
        };
        let mut c = Compiler::new(cfg);
        let out = c.compile(&schema()).expect("compiles");
        let expected = 2.0 + out.provisioning.transferred_mb / 100.0;
        assert!((out.provisioning.latency_secs - expected).abs() < 1e-9);
    }
}
