//! # tacc-compiler
//!
//! Layer 2 of the TACC workflow abstraction — the **compiler layer**.
//!
//! Per the paper (§3.1), this layer "parses the task description file,
//! prepares a runtime environment for the task, and submits the job to the
//! scheduling layer", emitting a *self-contained execution instruction*
//! that carries application code, dependency libraries and input data. Two
//! properties from the paper are modelled faithfully:
//!
//! * The instruction form depends on the task: "as simple as a few lines of
//!   shell commands, or as complicated as a Docker image"
//!   ([`InstructionKind`]).
//! * Large, repeated inputs are **delta-cached**: "TACC uses a caching
//!   mechanism that only updates the delta of the instruction and retains
//!   the unchanged parts" ([`ChunkCache`]). Environments are decomposed
//!   into content-addressed chunks (image, dependency bundles, dataset
//!   shards); only missing chunks are transferred, and provisioning latency
//!   is a function of the bytes actually moved. Experiment T3 regenerates
//!   the cache's hit-rate/latency table from this model.
//!
//! ## Example
//!
//! ```
//! use tacc_compiler::{Compiler, CompilerConfig};
//! use tacc_workload::{TaskSchema, GroupId};
//!
//! let mut compiler = Compiler::new(CompilerConfig::default());
//! let schema = TaskSchema::builder("quick", GroupId::from_index(0))
//!     .build().expect("valid schema");
//! let first = compiler.compile(&schema).expect("compiles");
//! let second = compiler.compile(&schema).expect("compiles");
//! // The second submission reuses every cached chunk: less data moves.
//! assert!(second.provisioning.transferred_mb < first.provisioning.transferred_mb);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod compile;
mod instruction;

pub use cache::{CacheStats, ChunkCache, ChunkId};
pub use compile::{CompileError, Compiler, CompilerConfig};
pub use instruction::{CompiledTask, ExecutionInstruction, InstructionKind, Provisioning};
