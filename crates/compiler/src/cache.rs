//! The content-addressed chunk cache behind delta provisioning.

use std::collections::BTreeMap;
use std::fmt;

/// Content address of a chunk: a stable 64-bit digest of its identity.
///
/// Real TACC content-addresses Docker layers and dataset blocks; the digest
/// here is FNV-1a over the chunk's logical name and size, which preserves
/// the property the experiments need — identical inputs dedupe, different
/// inputs don't.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkId(u64);

impl ChunkId {
    /// Addresses a chunk by its logical name and size in MiB.
    pub fn of(name: &str, size_mb: u32) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash ^= u64::from(size_mb).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ChunkId(hash)
    }

    /// Raw digest value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chunk:{:016x}", self.0)
    }
}

/// Cumulative cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Chunk lookups that were already resident.
    pub hits: u64,
    /// Chunk lookups that required a transfer.
    pub misses: u64,
    /// MiB served from cache (avoided transfers).
    pub hit_mb: u64,
    /// MiB fetched on misses.
    pub miss_mb: u64,
    /// Chunks evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate by chunk count (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Hit rate by bytes (0 when no traffic yet).
    pub fn byte_hit_rate(&self) -> f64 {
        let total = self.hit_mb + self.miss_mb;
        if total == 0 {
            0.0
        } else {
            self.hit_mb as f64 / total as f64
        }
    }
}

/// An LRU, capacity-bounded, content-addressed chunk store.
///
/// `fetch` is the only operation: it reports whether the chunk was resident
/// and makes it resident (evicting least-recently-used chunks if needed).
/// A chunk larger than the whole cache is transferred but not retained.
#[derive(Debug, Clone)]
pub struct ChunkCache {
    capacity_mb: u64,
    used_mb: u64,
    /// chunk -> (size, last-use tick). Ordered map: `evict_lru` iterates
    /// it, and iteration order must not depend on a hasher
    /// (the hash-iter lint).
    resident: BTreeMap<ChunkId, (u32, u64)>,
    tick: u64,
    stats: CacheStats,
}

impl ChunkCache {
    /// Creates a cache bounded to `capacity_mb` MiB.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_mb` is zero.
    pub fn new(capacity_mb: u64) -> Self {
        assert!(capacity_mb > 0, "cache capacity must be positive");
        ChunkCache {
            capacity_mb,
            used_mb: 0,
            resident: BTreeMap::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Cache capacity in MiB.
    pub fn capacity_mb(&self) -> u64 {
        self.capacity_mb
    }

    /// Resident bytes in MiB.
    pub fn used_mb(&self) -> u64 {
        self.used_mb
    }

    /// Number of resident chunks.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// True if `chunk` is currently resident (does not touch LRU state).
    pub fn contains(&self, chunk: ChunkId) -> bool {
        self.resident.contains_key(&chunk)
    }

    /// Looks up `chunk`; returns `true` on a hit. On a miss the chunk is
    /// fetched (counted in [`CacheStats::miss_mb`]) and inserted, evicting
    /// LRU chunks as needed.
    pub fn fetch(&mut self, chunk: ChunkId, size_mb: u32) -> bool {
        self.tick += 1;
        if let Some(entry) = self.resident.get_mut(&chunk) {
            entry.1 = self.tick;
            self.stats.hits += 1;
            self.stats.hit_mb += u64::from(size_mb);
            return true;
        }
        self.stats.misses += 1;
        self.stats.miss_mb += u64::from(size_mb);
        if u64::from(size_mb) > self.capacity_mb {
            // Streams through without displacing the working set.
            return false;
        }
        while self.used_mb + u64::from(size_mb) > self.capacity_mb {
            self.evict_lru();
        }
        self.resident.insert(chunk, (size_mb, self.tick));
        self.used_mb += u64::from(size_mb);
        false
    }

    fn evict_lru(&mut self) {
        let victim = self
            .resident
            .iter()
            .min_by_key(|(_, &(_, tick))| tick)
            .map(|(&id, &(size, _))| (id, size))
            .expect("evict_lru called on nonempty cache");
        self.resident.remove(&victim.0);
        self.used_mb -= u64::from(victim.1);
        self.stats.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ids_distinguish_name_and_size() {
        let a = ChunkId::of("torch", 800);
        assert_eq!(a, ChunkId::of("torch", 800));
        assert_ne!(a, ChunkId::of("torch", 801));
        assert_ne!(a, ChunkId::of("torchvision", 800));
    }

    #[test]
    fn fetch_miss_then_hit() {
        let mut c = ChunkCache::new(1000);
        let id = ChunkId::of("img", 300);
        assert!(!c.fetch(id, 300));
        assert!(c.fetch(id, 300));
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hit_mb, 300);
        assert_eq!(s.miss_mb, 300);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(c.used_mb(), 300);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = ChunkCache::new(1000);
        let a = ChunkId::of("a", 400);
        let b = ChunkId::of("b", 400);
        let d = ChunkId::of("d", 400);
        c.fetch(a, 400);
        c.fetch(b, 400);
        c.fetch(a, 400); // touch a: b becomes LRU
        c.fetch(d, 400); // needs eviction of b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.used_mb(), 800);
    }

    #[test]
    fn oversized_chunk_streams_through() {
        let mut c = ChunkCache::new(100);
        let big = ChunkId::of("dataset", 5000);
        assert!(!c.fetch(big, 5000));
        assert!(!c.fetch(big, 5000)); // still a miss: never retained
        assert_eq!(c.used_mb(), 0);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn byte_hit_rate_weighs_sizes() {
        let mut c = ChunkCache::new(10_000);
        let small = ChunkId::of("s", 10);
        let large = ChunkId::of("l", 990);
        c.fetch(small, 10);
        c.fetch(large, 990);
        c.fetch(large, 990);
        // count hit rate: 1/3; byte hit rate: 990/1990.
        assert!((c.stats().hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.stats().byte_hit_rate() - 990.0 / 1990.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = ChunkCache::new(0);
    }
}
