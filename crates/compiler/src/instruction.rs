//! Execution instructions: the compiler layer's self-contained output.

use serde::{Deserialize, Serialize};

use tacc_workload::{RuntimePreference, TaskSchema};

/// The form an execution instruction takes.
///
/// The paper: "the output of this compiler layer could be as simple as a
/// few lines of shell commands, or as complicated as a Docker image." Small
/// CPU tasks compile to shell commands; anything with a GPU environment or
/// large dependency closure becomes a container image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstructionKind {
    /// A short shell script executed directly on the node.
    ShellCommands,
    /// A container image materialized from cached layers.
    ContainerImage,
}

impl std::fmt::Display for InstructionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstructionKind::ShellCommands => f.write_str("shell"),
            InstructionKind::ContainerImage => f.write_str("container"),
        }
    }
}

/// What provisioning this compilation actually cost, under delta caching.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Provisioning {
    /// MiB that had to be transferred (cache misses + per-job code).
    pub transferred_mb: f64,
    /// MiB the instruction references in total.
    pub total_mb: f64,
    /// Chunk-level cache hits for this compilation.
    pub chunk_hits: u32,
    /// Chunk-level cache misses for this compilation.
    pub chunk_misses: u32,
    /// Modelled provisioning latency in seconds.
    pub latency_secs: f64,
}

impl Provisioning {
    /// Fraction of referenced bytes served from cache.
    pub fn delta_savings(&self) -> f64 {
        if self.total_mb == 0.0 {
            0.0
        } else {
            1.0 - self.transferred_mb / self.total_mb
        }
    }
}

/// The self-contained instruction handed to the scheduling layer.
///
/// Everything the execution layer needs is resolved here: the instruction
/// form, the runtime system to use (resolved from the schema's preference
/// and static characteristics, per the paper's Table 1), and the gang shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionInstruction {
    /// Instruction form.
    pub kind: InstructionKind,
    /// The runtime system the execution layer should use. Never `Auto`:
    /// compilation resolves it.
    pub runtime: RuntimePreference,
    /// Number of gang workers.
    pub workers: u32,
    /// Image + dependency + dataset bytes referenced, MiB.
    pub payload_mb: f64,
}

/// A compiled task: the original schema, its instruction, and what the
/// compilation cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledTask {
    /// The schema this task was compiled from (kept so the instruction is
    /// self-contained).
    pub schema: TaskSchema,
    /// The executable instruction.
    pub instruction: ExecutionInstruction,
    /// Provisioning cost of this compilation.
    pub provisioning: Provisioning,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_savings_bounds() {
        let p = Provisioning {
            transferred_mb: 25.0,
            total_mb: 100.0,
            chunk_hits: 3,
            chunk_misses: 1,
            latency_secs: 4.0,
        };
        assert!((p.delta_savings() - 0.75).abs() < 1e-12);
        let empty = Provisioning {
            transferred_mb: 0.0,
            total_mb: 0.0,
            chunk_hits: 0,
            chunk_misses: 0,
            latency_secs: 0.0,
        };
        assert_eq!(empty.delta_savings(), 0.0);
    }

    #[test]
    fn instruction_kind_display() {
        assert_eq!(InstructionKind::ShellCommands.to_string(), "shell");
        assert_eq!(InstructionKind::ContainerImage.to_string(), "container");
    }
}
